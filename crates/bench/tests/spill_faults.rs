//! Damage containment and resumability for the out-of-core pipeline.
//!
//! Two properties under test, both promised by DESIGN.md §11:
//!
//! * **Never a wrong number.** Spill files damaged in flight (the PR-5
//!   fault injector firing at `core.spill.write`) or at rest (bit flip,
//!   torn tail) lose *at most* the damaged chunks: every folded counter
//!   is elementwise ≤ the clean reference, the loss is visible in
//!   `quarantined` / `torn_tails`, and nothing is ever overcounted.
//! * **Resumable merge.** A download fold checkpointing into a merge
//!   log and killed between (or during) checkpoints converges to the
//!   byte-identical result when re-run with the same log.

use appstore_core::faults::with_injector;
use appstore_core::spill::SITE_SPILL_WRITE;
use appstore_core::{FaultInjector, FaultKind, FaultPlan, FaultTrigger, Seed};
use appstore_synth::{spill_generate, StoreProfile, StoreSpill};
use bench::streaming::fold_downloads;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spill-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn make_spill(dir: &Path, shards: usize, scale: u32) -> StoreSpill {
    let profile = StoreProfile::anzhi().scaled_down(scale);
    spill_generate(&profile, Seed::new(2013).child(&profile.name), dir, shards)
        .expect("spill generation")
}

/// Elementwise `damaged ≤ reference`: losing rows is allowed, inventing
/// them never is.
fn assert_never_overcounts(reference: &[u64], damaged: &[u64], label: &str) {
    assert_eq!(
        reference.len(),
        damaged.len(),
        "{label}: app census changed"
    );
    for (app, (&clean, &dirty)) in reference.iter().zip(damaged).enumerate() {
        assert!(
            dirty <= clean,
            "{label}: app {app} overcounted ({dirty} > {clean}) — damage must only lose rows"
        );
    }
}

#[test]
fn fold_survives_write_faults_without_overcounting() {
    // Scale 8 gives the single download shard several 8192-row chunks,
    // so specific chunk indices can be damaged while others survive.
    let clean_dir = temp_dir("writer-clean");
    let clean = make_spill(&clean_dir, 1, 8);
    let reference = fold_downloads(&clean, None).expect("clean fold");
    assert_eq!(reference.quarantined, 0);
    assert_eq!(reference.torn_tails, 0);
    assert_eq!(reference.rows, clean.total_downloads);

    // Same generation, but every writer's second sealed chunk is
    // silently corrupted and its fourth append is torn mid-line (the
    // torn half-line swallows the following append into one bad line).
    let plan = FaultPlan::seeded(42)
        .rule(
            SITE_SPILL_WRITE,
            FaultKind::Corrupt,
            FaultTrigger::AtIndex(1),
        )
        .rule(
            SITE_SPILL_WRITE,
            FaultKind::PartialWrite,
            FaultTrigger::AtIndex(3),
        );
    let injector = FaultInjector::new(plan);
    let dirty_dir = temp_dir("writer-dirty");
    let damaged = with_injector(&injector, || make_spill(&dirty_dir, 1, 8));
    assert!(
        !injector.events().is_empty(),
        "the fault plan should have fired during generation"
    );

    let fold = fold_downloads(&damaged, None).expect("fold over damaged files");
    assert!(
        fold.quarantined > 0 || fold.torn_tails > 0,
        "injected damage must be visible as quarantined chunks or torn tails"
    );
    assert!(
        fold.rows < reference.rows,
        "damaged rows should be lost, not invented"
    );
    assert!(fold.rows > 0, "undamaged chunks must survive the fold");
    assert_never_overcounts(&reference.free_counts, &fold.free_counts, "write faults");
    assert_never_overcounts(
        &reference.paid_counts,
        &fold.paid_counts,
        "write faults (paid)",
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dirty_dir);
}

#[test]
fn fold_quarantines_bit_flips_and_torn_tails_at_rest() {
    // Scale 16 in one shard gives a two-chunk download file: an
    // interior line to flip and a final line to tear.
    let dir = temp_dir("at-rest");
    let spill = make_spill(&dir, 1, 16);
    let reference = fold_downloads(&spill, None).expect("clean fold");

    // Bit-flip one byte inside the interior (first) chunk: exactly that
    // chunk must quarantine — the reader keeps folding past it.
    let path = &spill.shard_downloads[0];
    let bytes = std::fs::read(path).expect("read shard");
    let lines = bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(
        lines >= 2,
        "expected a multi-chunk shard, got {lines} line(s)"
    );
    let mut flipped_bytes = bytes.clone();
    flipped_bytes[15] ^= 0x08;
    std::fs::write(path, &flipped_bytes).expect("write damaged shard");

    let flipped = fold_downloads(&spill, None).expect("fold over bit-flipped shard");
    assert_eq!(
        flipped.quarantined, 1,
        "exactly the flipped chunk quarantines"
    );
    assert_eq!(flipped.torn_tails, 0);
    assert_never_overcounts(&reference.free_counts, &flipped.free_counts, "bit flip");
    assert!(flipped.rows < reference.rows);
    assert!(flipped.rows > 0, "the undamaged chunk must survive");

    // Now also tear the file's last line (a killed writer): the tail
    // reads as torn, not as another quarantined interior chunk.
    let cut = flipped_bytes.len() - 9;
    std::fs::write(path, &flipped_bytes[..cut]).expect("truncate shard");

    let torn = fold_downloads(&spill, None).expect("fold over torn shard");
    assert_eq!(torn.quarantined, 1);
    assert_eq!(torn.torn_tails, 1, "a truncated final line is a torn tail");
    assert_never_overcounts(&flipped.free_counts, &torn.free_counts, "torn tail");

    let _ = std::fs::remove_dir_all(&dir);
}

fn assert_same_fold(
    reference: &bench::streaming::DownloadFold,
    resumed: &bench::streaming::DownloadFold,
    label: &str,
) {
    assert_eq!(
        reference.free_counts, resumed.free_counts,
        "{label}: free counts"
    );
    assert_eq!(
        reference.paid_counts, resumed.paid_counts,
        "{label}: paid counts"
    );
    assert_eq!(reference.rows, resumed.rows, "{label}: row tally");
    assert_eq!(
        reference.quarantined, resumed.quarantined,
        "{label}: quarantine tally"
    );
    assert_eq!(
        reference.heavy.top(10),
        resumed.heavy.top(10),
        "{label}: heavy-hitter summary"
    );
}

#[test]
fn merge_log_resumes_after_mid_merge_kill() {
    let dir = temp_dir("resume");
    let spill = make_spill(&dir, 4, 64);
    let reference = fold_downloads(&spill, None).expect("reference fold");

    // A completed logged fold reproduces the plain fold, and a second
    // run over the finished log converges without re-reading shards.
    let log = dir.join("merge.log");
    let logged = fold_downloads(&spill, Some(&log)).expect("logged fold");
    assert_same_fold(&reference, &logged, "logged");
    let resumed = fold_downloads(&spill, Some(&log)).expect("resume from complete log");
    assert_same_fold(&reference, &resumed, "resume-complete");

    // Kill after the first checkpoint: keep only the log's first sealed
    // line, as if the process died while folding shard 2.
    let text = std::fs::read_to_string(&log).expect("read log");
    let first_line_len = text.find('\n').expect("at least one checkpoint") + 1;
    let lines = text.lines().count();
    assert_eq!(lines, 4, "one checkpoint per shard");
    std::fs::write(&log, &text[..first_line_len]).expect("truncate log");
    let resumed = fold_downloads(&spill, Some(&log)).expect("resume from shard 1");
    assert_same_fold(&reference, &resumed, "resume-after-kill");

    // Kill *during* a checkpoint write: a torn final line must fall
    // back to the previous checkpoint, never half-adopt state.
    std::fs::write(&log, &text[..text.len() - 7]).expect("tear log tail");
    let resumed = fold_downloads(&spill, Some(&log)).expect("resume from torn log");
    assert_same_fold(&reference, &resumed, "resume-torn-checkpoint");

    // A log whose checkpoints are all damaged degrades to a full refold.
    let garbage: String = text
        .lines()
        .map(|l| {
            let mut s = l.to_string();
            s.replace_range(0..1, "g");
            s.push('\n');
            s
        })
        .collect();
    std::fs::write(&log, garbage).expect("write damaged log");
    let resumed = fold_downloads(&spill, Some(&log)).expect("refold from damaged log");
    assert_same_fold(&reference, &resumed, "resume-all-damaged");

    let _ = std::fs::remove_dir_all(&dir);
}

//! Closes the loop on the `appstore_obs::names` registry: every metric
//! and span key in the pinned golden metrics snapshot must be declared.
//! A call site that invents a name compiles (the record functions take
//! `&str`), but the next blessed golden run fails here — so undeclared
//! names cannot land silently.

use appstore_obs::names;
use serde_json::Value;
use std::path::Path;

fn golden_metrics() -> Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/metrics.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden snapshot {}", path.display()));
    serde_json::from_str(&text).expect("golden metrics parses")
}

/// Yields every registry export in the snapshot: the store-generation
/// registry plus one per experiment.
fn registries(doc: &Value) -> Vec<(&str, &Value)> {
    let mut out = vec![("stores", doc.get("stores").expect("stores registry"))];
    let experiments = doc
        .get("experiments")
        .and_then(Value::as_object)
        .expect("experiments map");
    for (id, registry) in experiments {
        out.push((id.as_str(), registry));
    }
    out
}

#[test]
fn every_snapshot_metric_key_is_declared() {
    let doc = golden_metrics();
    let mut checked = 0usize;
    for (owner, registry) in registries(&doc) {
        for family in ["counters", "gauges", "histograms", "hdr"] {
            let Some(map) = registry.get(family).and_then(Value::as_object) else {
                continue;
            };
            for (name, _) in map {
                assert!(
                    names::is_declared_metric(name),
                    "{owner}/{family} records undeclared metric {name:?} — \
                     declare it in appstore_obs::names"
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 50,
        "snapshot unexpectedly sparse ({checked} keys)"
    );
}

#[test]
fn every_snapshot_span_path_is_declared() {
    let doc = golden_metrics();
    let mut checked = 0usize;
    for (owner, registry) in registries(&doc) {
        let Some(spans) = registry.get("spans").and_then(Value::as_object) else {
            continue;
        };
        for (path, _) in spans {
            assert!(
                names::is_declared_span_path(path),
                "{owner} records undeclared span path {path:?} — \
                 declare every segment in appstore_obs::names::ALL_SPANS"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no span paths in the golden snapshot");
}

//! Harness regression tests: every registered experiment must run to
//! completion on a tiny store and produce printable lines plus a JSON
//! payload.

use appstore_core::Seed;
use bench::{run_experiment, Stores, EXPERIMENT_IDS};

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let seed = Seed::new(99);
    let stores = Stores::generate_all(64, seed.child("stores"));
    for id in EXPERIMENT_IDS {
        let result = run_experiment(id, &stores, seed.child("experiments"))
            .unwrap_or_else(|| panic!("unknown experiment id {id}"));
        assert_eq!(result.id, id);
        assert!(!result.lines.is_empty(), "{id} produced no output lines");
        assert!(!result.title.is_empty());
        assert!(result.json.is_object(), "{id} JSON not an object");
        // Rendering must include the id header.
        let rendered = result.render();
        assert!(rendered.contains(id), "{id} header missing");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    let seed = Seed::new(1);
    let stores = Stores::generate_all(256, seed);
    assert!(run_experiment("fig99", &stores, seed).is_none());
}

#[test]
fn experiments_are_deterministic() {
    let seed = Seed::new(7);
    let stores = Stores::generate_all(64, seed.child("stores"));
    for id in ["fig2", "fig5", "fig19", "recommend"] {
        let a = run_experiment(id, &stores, seed.child("experiments")).unwrap();
        let b = run_experiment(id, &stores, seed.child("experiments")).unwrap();
        assert_eq!(a.lines, b.lines, "{id} output not deterministic");
        assert_eq!(a.json, b.json, "{id} JSON not deterministic");
    }
}

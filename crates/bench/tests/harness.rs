//! Harness regression tests: every registered experiment must run to
//! completion on a tiny store and produce printable lines plus a JSON
//! payload.

use appstore_core::Seed;
use bench::{run_experiment, run_experiments, Stores, EXPERIMENT_IDS};

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let seed = Seed::new(99);
    let stores = Stores::generate_all(64, seed.child("stores"));
    for id in EXPERIMENT_IDS {
        let result = run_experiment(id, &stores, seed.child("experiments"))
            .unwrap_or_else(|| panic!("unknown experiment id {id}"));
        assert_eq!(result.id, id);
        assert!(!result.lines.is_empty(), "{id} produced no output lines");
        assert!(!result.title.is_empty());
        assert!(result.json.is_object(), "{id} JSON not an object");
        // Rendering must include the id header.
        let rendered = result.render();
        assert!(rendered.contains(id), "{id} header missing");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    let seed = Seed::new(1);
    let stores = Stores::generate_all(256, seed);
    assert!(run_experiment("fig99", &stores, seed).is_none());
}

#[test]
fn experiments_are_deterministic() {
    let seed = Seed::new(7);
    let stores = Stores::generate_all(64, seed.child("stores"));
    for id in ["fig2", "fig5", "fig19", "recommend"] {
        let a = run_experiment(id, &stores, seed.child("experiments")).unwrap();
        let b = run_experiment(id, &stores, seed.child("experiments")).unwrap();
        assert_eq!(a.lines, b.lines, "{id} output not deterministic");
        assert_eq!(a.json, b.json, "{id} JSON not deterministic");
    }
}

/// The promise behind `repro --threads N`: the rendered output (and the
/// JSON series) must be byte-identical for any thread count, including
/// thread counts that exceed the experiment count.
#[test]
fn experiment_batches_are_thread_count_invariant() {
    let seed = Seed::new(7);
    let stores = Stores::generate_all(64, seed.child("stores"));
    let ids = ["table1", "fig8", "fig19", "ablate-p", "crawl-recovery"];
    let render_all = |threads: usize| -> (String, Vec<String>) {
        let results = run_experiments(&ids, &stores, seed, threads, |_, _| {});
        let text: String = results.iter().map(|(r, _)| r.render()).collect();
        let json: Vec<String> = results
            .iter()
            .map(|(r, _)| serde_json::to_string_pretty(&r.json).expect("serialize"))
            .collect();
        (text, json)
    };
    let (serial_text, serial_json) = render_all(1);
    for threads in [2, 8] {
        let (text, json) = render_all(threads);
        assert_eq!(serial_text, text, "stdout differs at --threads {threads}");
        assert_eq!(serial_json, json, "JSON differs at --threads {threads}");
    }
}

/// Store generation through the threaded path must match the sequential
/// default for every thread count.
#[test]
fn store_generation_is_thread_count_invariant() {
    let seed = Seed::new(31);
    let serial = Stores::generate_all_threaded(128, seed, 1);
    let parallel = Stores::generate_all_threaded(128, seed, 4);
    assert_eq!(serial.bundles.len(), parallel.bundles.len());
    for (a, b) in serial.bundles.iter().zip(&parallel.bundles) {
        assert_eq!(a.profile.name, b.profile.name);
        assert_eq!(a.store.dataset, b.store.dataset);
    }
}

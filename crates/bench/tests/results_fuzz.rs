//! Fuzz tests: damaged `results/*.json` files must degrade to
//! WARN-and-skip, never crash the report.
//!
//! Each case takes a real checked-in results file, truncates it at an
//! arbitrary byte or flips an arbitrary bit, and feeds the directory to
//! [`bench::report::load_results`]. The invariant: the loader returns
//! `Ok`, and the damaged file is either still loadable (the mutation
//! landed somewhere harmless) or skipped with a warning naming it —
//! exactly one of the two. A final test drives the `repro report` binary
//! over a corrupted directory and asserts the WARN reaches stderr while
//! the exit stays zero (MISSING rows are not FAILs).

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// The checked-in results files the fuzzer mutates.
const VICTIMS: [&str; 4] = ["fig11", "fig19", "crawl-recovery", "fit-recovery"];

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Writes `content` as `<id>.json` in a fresh scratch directory.
fn scratch_dir_with(id: &str, content: &[u8]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "results-fuzz-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("{id}.json")), content).unwrap();
    dir
}

/// The WARN-and-skip invariant: after mutation, the file either loads or
/// is warned about — exactly one, and never a panic.
fn assert_warn_or_load(id: &str, mutated: &[u8]) {
    let dir = scratch_dir_with(id, mutated);
    let (results, warnings) = bench::report::load_results(dir.to_str().unwrap()).unwrap();
    let loaded = results.contains_key(id);
    let warned = warnings.iter().any(|w| w.contains(&format!("{id}.json")));
    assert!(
        loaded != warned,
        "{id}: loaded={loaded} warned={warned}; warnings={warnings:?}"
    );
    // Whatever survived must evaluate without panicking.
    let rows = bench::report::evaluate(&results, 1);
    assert!(!rows.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_results_warn_and_skip(victim in 0usize..VICTIMS.len(), cut in any::<usize>()) {
        let id = VICTIMS[victim];
        let text = std::fs::read(results_dir().join(format!("{id}.json"))).unwrap();
        let cut = cut % text.len();
        assert_warn_or_load(id, &text[..cut]);
    }

    #[test]
    fn bit_flipped_results_warn_and_skip(
        victim in 0usize..VICTIMS.len(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let id = VICTIMS[victim];
        let mut text = std::fs::read(results_dir().join(format!("{id}.json"))).unwrap();
        let at = pos % text.len();
        text[at] ^= 1 << bit;
        assert_warn_or_load(id, &text);
    }
}

/// End to end: `repro report` over a directory holding one good and one
/// mangled file prints a WARN to stderr, grades the good rows, and exits
/// zero (skipped files are MISSING, not FAIL).
#[test]
fn repro_report_warns_and_skips_damaged_files() {
    let good = std::fs::read(results_dir().join("fig19.json")).unwrap();
    let dir = scratch_dir_with("fig19", &good);
    std::fs::write(dir.join("fig11.json"), b"{\"free\": {}").unwrap(); // truncated
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["report", "--results", dir.to_str().unwrap()])
        .output()
        .expect("spawn repro report");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stderr.contains("WARN") && stderr.contains("fig11.json"),
        "stderr must warn about the damaged file:\n{stderr}"
    );
    assert!(
        stdout.contains("fig19"),
        "the intact file must still be graded:\n{stdout}"
    );
    assert!(
        output.status.success(),
        "skip must not become a FAIL exit: {:?}\n{stderr}",
        output.status
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Golden-figure regression suite.
//!
//! Runs the `repro` binary end-to-end at a pinned small scale and diffs
//! its output byte-for-byte against the checked-in goldens under
//! `tests/golden/` (repo root):
//!
//! * `<id>.stdout.txt` — the rendered text of each experiment id;
//! * `metrics.json` — the `--metrics --no-timings` snapshot of the whole
//!   `repro all` run.
//!
//! The run repeats for every thread count in `GOLDEN_THREADS` (default
//! `1,2,8`; CI overrides per matrix leg) and every repetition must be
//! byte-identical — the determinism contract the observability layer
//! promises. Regenerate the goldens with `scripts/bless.sh` (which sets
//! `GOLDEN_BLESS=1`) after an intentional output change.

use bench::{EXPERIMENT_IDS, STREAMING_IDS};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const GOLDEN_SCALE: &str = "64";
const GOLDEN_SEED: &str = "2013";

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn thread_counts() -> Vec<String> {
    std::env::var("GOLDEN_THREADS")
        .unwrap_or_else(|_| "1,2,8".to_string())
        .split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// One full `repro all` run: (stdout, metrics snapshot).
fn run_repro(threads: &str) -> (String, String) {
    let metrics_path = std::env::temp_dir().join(format!(
        "golden-metrics-{}-t{threads}.json",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            GOLDEN_SCALE,
            "--seed",
            GOLDEN_SEED,
            "--threads",
            threads,
            "--no-timings",
            "--metrics",
        ])
        .arg(&metrics_path)
        .arg("all")
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro --threads {threads} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("repro stdout is UTF-8");
    let metrics = std::fs::read_to_string(&metrics_path).expect("read metrics snapshot");
    let _ = std::fs::remove_file(&metrics_path);
    (stdout, metrics)
}

/// Splits `repro all` stdout into per-experiment sections keyed by id.
/// Sections start at `== <id> — <title> ==` header lines.
fn split_sections(stdout: &str) -> BTreeMap<String, String> {
    let mut sections = BTreeMap::new();
    let mut current: Option<(String, String)> = None;
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("== ") {
            if let Some((id, _)) = rest.split_once(" — ") {
                if let Some((prev_id, text)) = current.take() {
                    sections.insert(prev_id, text);
                }
                current = Some((id.to_string(), String::new()));
            }
        }
        if let Some((_, text)) = current.as_mut() {
            text.push_str(line);
            text.push('\n');
        }
    }
    if let Some((prev_id, text)) = current.take() {
        sections.insert(prev_id, text);
    }
    sections
}

fn diff_or_bless(path: &Path, actual: &str, bless: bool, label: &str) {
    if bless {
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!(
            "missing golden {} — run scripts/bless.sh to generate it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{label} drifted from golden {}.\n\
         If the change is intentional, regenerate with scripts/bless.sh.\n\
         --- golden ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

/// The tentpole assertion: every experiment's stdout and the no-timings
/// metrics snapshot match the pinned goldens, byte-for-byte, for every
/// thread count in `GOLDEN_THREADS`.
#[test]
fn golden_stdout_and_metrics_are_pinned_for_every_thread_count() {
    let bless = std::env::var("GOLDEN_BLESS").is_ok();
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("golden dir");
    let threads = thread_counts();
    assert!(
        !threads.is_empty(),
        "GOLDEN_THREADS must name a thread count"
    );

    let (reference_threads, rest) = threads.split_first().expect("nonempty");
    let (stdout, metrics) = run_repro(reference_threads);

    // Determinism across thread counts: later runs must be byte-equal.
    for t in rest {
        let (other_stdout, other_metrics) = run_repro(t);
        assert!(
            stdout == other_stdout,
            "stdout differs between --threads {reference_threads} and --threads {t}"
        );
        assert!(
            metrics == other_metrics,
            "metrics snapshot differs between --threads {reference_threads} and --threads {t}"
        );
    }

    // Per-experiment stdout goldens: every id must appear and match.
    let sections = split_sections(&stdout);
    for id in EXPERIMENT_IDS {
        let section = sections
            .get(id)
            .unwrap_or_else(|| panic!("experiment {id} missing from repro all stdout"));
        diff_or_bless(
            &dir.join(format!("{id}.stdout.txt")),
            section,
            bless,
            &format!("experiment {id} stdout"),
        );
    }
    assert_eq!(
        sections.len(),
        EXPERIMENT_IDS.len(),
        "repro all printed unexpected extra sections"
    );

    diff_or_bless(
        &dir.join("metrics.json"),
        &metrics,
        bless,
        "metrics snapshot",
    );
}

/// The out-of-core path is pinned to the *same* goldens as the
/// in-memory path: `repro --streaming` stdout for the fold-based
/// experiments must match the checked-in sections byte-for-byte. This
/// test never blesses — the in-memory run above owns the goldens, and
/// a streaming divergence is always a streaming bug.
#[test]
fn streaming_stdout_matches_the_inmemory_goldens() {
    let dir = golden_dir();
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            GOLDEN_SCALE,
            "--seed",
            GOLDEN_SEED,
            "--threads",
            "1",
            "--no-timings",
            "--streaming",
            "--shards",
            "3",
            "all",
        ])
        .output()
        .expect("spawn repro --streaming");
    assert!(
        output.status.success(),
        "repro --streaming failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("repro stdout is UTF-8");
    let sections = split_sections(&stdout);
    for id in STREAMING_IDS {
        let section = sections
            .get(id)
            .unwrap_or_else(|| panic!("experiment {id} missing from streaming stdout"));
        let path = dir.join(format!("{id}.stdout.txt"));
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run scripts/bless.sh (in-memory path) first",
                path.display()
            )
        });
        assert!(
            expected == *section,
            "streaming {id} stdout drifted from the in-memory golden {}.\n\
             --- golden ---\n{expected}\n--- streaming ---\n{section}",
            path.display()
        );
    }
}

//! Differential suite: streaming vs in-memory analysis paths.
//!
//! The out-of-core pipeline promises bit-identical rendered output to
//! the in-memory path for every experiment in `STREAMING_IDS`, for any
//! shard layout and thread count. These tests prove it two ways:
//!
//! * library level — fold-based results rendered against
//!   `run_experiment` output across scales {4, 16, 64} and shard
//!   counts {1, 3, 8};
//! * binary level — `repro --streaming` stdout sections byte-compared
//!   against the plain run, and `--no-timings` metrics snapshots
//!   byte-compared across thread and shard counts within the streaming
//!   path (streaming generation skips snapshot materialization, so its
//!   store metrics legitimately differ from the batch path).

use appstore_core::Seed;
use bench::{run_experiment, run_streaming_experiment, Stores, StreamingStores, STREAMING_IDS};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

const SEED: u64 = 2013;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("streaming-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp spill dir");
    dir
}

/// Renders every streaming experiment through both paths and asserts
/// byte-equal text for the given scale and shard count.
fn assert_library_equivalence(scale: u32, shards: usize) {
    let seed = Seed::new(SEED);
    let stores = Stores::generate_all_threaded(scale, seed.child("stores"), 1);
    let dir = temp_dir(&format!("lib-s{scale}-sh{shards}"));
    let streaming = StreamingStores::generate_pure(scale, seed.child("stores"), 1, &dir, shards)
        .expect("spill generation");
    for id in STREAMING_IDS {
        let batch = run_experiment(id, &stores, seed.child("experiments"))
            .expect("known id")
            .render();
        let folded = run_streaming_experiment(id, &streaming, seed.child("experiments"))
            .expect("streaming id")
            .expect("fold io")
            .render();
        assert!(
            batch == folded,
            "{id} diverged at scale {scale}, {shards} shards\n\
             --- batch ---\n{batch}\n--- streaming ---\n{folded}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_matches_batch_scale_4() {
    assert_library_equivalence(4, 3);
}

#[test]
fn streaming_matches_batch_scale_16() {
    assert_library_equivalence(16, 8);
}

#[test]
fn streaming_matches_batch_scale_64_all_shard_counts() {
    for shards in [1, 3, 8] {
        assert_library_equivalence(64, shards);
    }
}

/// One `repro` invocation; returns (stdout, metrics snapshot).
fn run_repro(scale: u32, threads: u32, streaming: Option<usize>, tag: &str) -> (String, String) {
    let metrics_path = std::env::temp_dir().join(format!(
        "streaming-equiv-metrics-{tag}-{}.json",
        std::process::id()
    ));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args([
        "--scale",
        &scale.to_string(),
        "--seed",
        &SEED.to_string(),
        "--threads",
        &threads.to_string(),
        "--no-timings",
        "--metrics",
    ])
    .arg(&metrics_path);
    if let Some(shards) = streaming {
        cmd.args(["--streaming", "--shards", &shards.to_string()]);
    }
    cmd.args(STREAMING_IDS);
    let output = cmd.output().expect("spawn repro");
    assert!(
        output.status.success(),
        "repro ({tag}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("repro stdout is UTF-8");
    let metrics = std::fs::read_to_string(&metrics_path).expect("read metrics snapshot");
    let _ = std::fs::remove_file(&metrics_path);
    (stdout, metrics)
}

/// Splits `repro` stdout into per-experiment sections keyed by id.
fn split_sections(stdout: &str) -> BTreeMap<String, String> {
    let mut sections = BTreeMap::new();
    let mut current: Option<(String, String)> = None;
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("== ") {
            if let Some((id, _)) = rest.split_once(" — ") {
                if let Some((prev_id, text)) = current.take() {
                    sections.insert(prev_id, text);
                }
                current = Some((id.to_string(), String::new()));
            }
        }
        if let Some((_, text)) = current.as_mut() {
            text.push_str(line);
            text.push('\n');
        }
    }
    if let Some((prev_id, text)) = current.take() {
        sections.insert(prev_id, text);
    }
    sections
}

/// The binary-level matrix at scale 64: streaming stdout equals plain
/// stdout for every thread count × shard count combination, and the
/// streaming metrics snapshot is byte-stable across the whole matrix.
#[test]
fn repro_streaming_stdout_matches_plain_across_threads_and_shards() {
    let scale = 64;
    let (plain_stdout, _) = run_repro(scale, 1, None, "plain");
    let plain_sections = split_sections(&plain_stdout);

    let mut reference_metrics: Option<String> = None;
    for threads in [1, 2, 8] {
        for shards in [1, 3, 8] {
            let tag = format!("t{threads}-sh{shards}");
            let (stdout, metrics) = run_repro(scale, threads, Some(shards), &tag);
            let sections = split_sections(&stdout);
            for id in STREAMING_IDS {
                assert_eq!(
                    plain_sections.get(id),
                    sections.get(id),
                    "{id} stdout diverged between plain and streaming ({tag})"
                );
            }
            match &reference_metrics {
                None => reference_metrics = Some(metrics),
                Some(reference) => assert!(
                    *reference == metrics,
                    "streaming metrics snapshot differs at {tag}"
                ),
            }
        }
    }
}

/// Smaller scales through the binary, paired combinations.
#[test]
fn repro_streaming_stdout_matches_plain_small_scales() {
    for (scale, threads, shards) in [(16, 2, 3), (16, 1, 8), (4, 1, 1)] {
        let tag = format!("s{scale}-t{threads}-sh{shards}");
        let (plain_stdout, _) = run_repro(scale, 1, None, &format!("plain-{tag}"));
        let (stream_stdout, _) = run_repro(scale, threads, Some(shards), &tag);
        let plain = split_sections(&plain_stdout);
        let streamed = split_sections(&stream_stdout);
        for id in STREAMING_IDS {
            assert_eq!(
                plain.get(id),
                streamed.get(id),
                "{id} stdout diverged between plain and streaming at {tag}"
            );
        }
    }
}

/// `repro all --streaming` runs exactly the streaming ids and still
/// renders them identically to the targeted invocation.
#[test]
fn repro_all_streaming_runs_streaming_ids_only() {
    let (stdout, _) = run_repro(16, 1, Some(3), "all-targeted");
    let metrics_path = std::env::temp_dir().join(format!(
        "streaming-equiv-metrics-all-{}.json",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "16",
            "--seed",
            &SEED.to_string(),
            "--threads",
            "1",
            "--no-timings",
            "--metrics",
        ])
        .arg(&metrics_path)
        .args(["--streaming", "--shards", "3", "all"])
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro all --streaming failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let _ = std::fs::remove_file(&metrics_path);
    let all_stdout = String::from_utf8(output.stdout).expect("UTF-8");
    let all_sections = split_sections(&all_stdout);
    assert_eq!(
        all_sections.keys().cloned().collect::<Vec<_>>(),
        STREAMING_IDS
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>(),
        "repro all --streaming should run exactly the streaming ids"
    );
    assert_eq!(split_sections(&stdout), all_sections);
}

/// A non-streaming id under `--streaming` is a usage error.
#[test]
fn repro_streaming_rejects_non_streaming_ids() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "16", "--streaming", "table1"])
        .output()
        .expect("spawn repro");
    assert_eq!(
        output.status.code(),
        Some(2),
        "expected usage-error exit:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

//! Trace-export and fidelity-report integration tests.
//!
//! Runs the `repro` binary with `--trace`/`--trace-folded` at a small
//! scale and checks the two exporter contracts end to end:
//!
//! * the logical-time collapsed-stack export is **byte-identical** for
//!   `--threads 1/2/8` (the determinism promise of track-scoped logical
//!   clocks);
//! * the Chrome trace-event JSON parses, every track's `B`/`E` events
//!   balance, and timestamps are monotone within each track;
//! * `repro report` grades the checked-in full-scale `results/` with no
//!   FAIL and no MISSING rows, and exits nonzero on a fabricated
//!   invariant violation.

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A fast, representative experiment subset: crawler spans + breaker
/// instants (crawl), model-fit spans + candidate instants (fig8), cache
/// sweeps (fig19, prefetch), and the table-1 summary.
const TRACE_IDS: [&str; 5] = ["table1", "fig8", "fig19", "crawl", "prefetch"];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn tmp(name: &str, threads: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trace-{name}-{}-t{threads}", std::process::id()))
}

/// One traced run: returns (chrome json text, logical folded text).
fn run_traced(threads: &str) -> (String, String) {
    let chrome = tmp("chrome.json", threads);
    let folded = tmp("folded.txt", threads);
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "64", "--seed", "2013", "--threads", threads])
        .arg("--trace")
        .arg(&chrome)
        .arg("--trace-folded")
        .arg(&folded)
        .args(TRACE_IDS)
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro --threads {threads} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let chrome_text = std::fs::read_to_string(&chrome).expect("read chrome trace");
    let folded_text = std::fs::read_to_string(&folded).expect("read folded trace");
    let _ = std::fs::remove_file(&chrome);
    let _ = std::fs::remove_file(&folded);
    (chrome_text, folded_text)
}

#[test]
fn logical_collapsed_export_is_byte_identical_across_thread_counts() {
    let (_, folded_1) = run_traced("1");
    assert!(
        !folded_1.is_empty(),
        "traced run produced an empty folded export"
    );
    for threads in ["2", "8"] {
        let (_, folded_n) = run_traced(threads);
        assert!(
            folded_1 == folded_n,
            "logical collapsed stacks differ between --threads 1 and --threads {threads}"
        );
    }
    // Spot-check the content: span frames nest and instants appear as
    // leaves under the span that emitted them.
    assert!(
        folded_1.contains("stores.generate;synth.generate"),
        "store generation stack missing:\n{folded_1}"
    );
    assert!(
        folded_1.contains("fit.screen;fit.candidate.screened"),
        "per-candidate screening instants missing:\n{folded_1}"
    );
    for line in folded_1.lines() {
        let (_, weight) = line.rsplit_once(' ').expect("collapsed line shape");
        weight.parse::<u128>().expect("integer weight");
    }
}

#[test]
fn chrome_trace_validates_balanced_and_monotone_per_track() {
    let (chrome, _) = run_traced("8");
    let doc: Value = serde_json::from_str(&chrome).expect("chrome trace parses as JSON");
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Value::as_str),
        Some("0"),
        "ring overflowed in a small traced run"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut depth: BTreeMap<i64, i64> = BTreeMap::new();
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut labels = Vec::new();
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("ph");
        let tid = event.get("tid").and_then(Value::as_i64).expect("tid");
        match ph {
            "M" => {
                if event.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let name = event
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("thread_name value");
                    labels.push(name.to_string());
                }
                continue;
            }
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {tid} closed a span it never opened");
            }
            "i" | "C" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
        let ts = event.get("ts").and_then(Value::as_f64).expect("ts");
        let prev = last_ts.entry(tid).or_insert(f64::MIN);
        assert!(ts >= *prev, "timestamps regressed on track {tid}");
        *prev = ts;
    }
    for (tid, d) in &depth {
        assert_eq!(*d, 0, "track {tid} has unbalanced B/E events");
    }
    // Experiment tracks are labeled with their ids; store-generation
    // tracks with store names.
    for expected in ["fig8", "crawl", "anzhi"] {
        assert!(
            labels.iter().any(|l| l == expected),
            "no track labeled {expected:?}; labels: {labels:?}"
        );
    }
}

#[test]
fn report_grades_checked_in_results_without_fail_or_missing() {
    let results_dir = repo_root().join("results");
    let md_path = tmp("fidelity.md", "report");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("report")
        .arg("--results")
        .arg(&results_dir)
        .arg("--md")
        .arg(&md_path)
        .output()
        .expect("spawn repro report");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "repro report failed on the checked-in results:\n{stdout}"
    );
    assert!(
        stdout.contains("0 fail, 0 missing"),
        "full-scale results should grade clean:\n{stdout}"
    );
    // Every figure the target table covers must have been evaluated.
    for figure in ["fig2", "fig6", "fig8", "fig9", "fig11", "fig17", "fig19"] {
        assert!(stdout.contains(figure), "{figure} absent from report");
    }
    let md = std::fs::read_to_string(&md_path).expect("markdown report written");
    let _ = std::fs::remove_file(&md_path);
    assert!(md.contains("| Verdict |"), "markdown header missing");
    assert!(md.contains("| PASS |"), "markdown verdicts missing");
}

#[test]
fn report_exits_nonzero_on_invariant_violation() {
    // A doctored results dir where affinity loses to its random-walk
    // baseline — an ordering the paper (and any scale) guarantees.
    let dir = tmp("bad-results", "inv");
    std::fs::create_dir_all(&dir).expect("create doctored results dir");
    std::fs::write(
        dir.join("fig6.json"),
        r#"{"depths": [{"depth": 1, "mean_affinity": 0.05, "random_walk": 0.5}]}"#,
    )
    .expect("write doctored fig6");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("report")
        .arg("--results")
        .arg(&dir)
        .output()
        .expect("spawn repro report");
    let _ = std::fs::remove_dir_all(&dir);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !output.status.success(),
        "report must exit nonzero on an invariant FAIL:\n{stdout}"
    );
    assert!(stdout.contains("FAIL"), "no FAIL row rendered:\n{stdout}");
}

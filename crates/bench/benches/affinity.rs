//! Criterion benches for the clustering-effect analysis (Figs. 5–7):
//! stream construction, the affinity metric at depths 1–3, and the exact
//! random-walk baselines.

use appstore_affinity::{
    affinity, affinity_by_group, affinity_samples, build_user_streams, random_walk_affinity,
};
use appstore_core::{CategoryId, Seed, StoreId};
use appstore_synth::{generate, StoreProfile};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn comment_dataset() -> appstore_core::Dataset {
    let mut profile = StoreProfile::anzhi().scaled_down(8);
    profile.commenter_fraction = 0.5;
    profile.comment_rate = 0.3;
    generate(&profile, StoreId(0), Seed::new(4)).dataset
}

/// Fig. 5: building per-user streams from the raw comment table.
fn bench_fig5_streams(c: &mut Criterion) {
    let dataset = comment_dataset();
    c.bench_function("fig5/build_user_streams", |b| {
        b.iter(|| build_user_streams(black_box(&dataset.comments), |a| dataset.category_of(a)))
    });
}

/// Fig. 6: per-group affinity with confidence intervals.
fn bench_fig6_group_affinity(c: &mut Criterion) {
    let dataset = comment_dataset();
    let streams = build_user_streams(&dataset.comments, |a| dataset.category_of(a));
    for depth in 1..=3usize {
        c.bench_function(&format!("fig6/affinity_by_group_depth{depth}"), |b| {
            b.iter(|| affinity_by_group(black_box(&streams), depth, 10))
        });
    }
    let apps_per_category = dataset.apps_by_category(dataset.last());
    c.bench_function("fig6/random_walk_baseline", |b| {
        b.iter(|| {
            (
                random_walk_affinity(black_box(&apps_per_category), 1),
                random_walk_affinity(black_box(&apps_per_category), 3),
            )
        })
    });
}

/// Fig. 7: per-user affinity samples and the raw metric kernel.
fn bench_fig7_affinity_metric(c: &mut Criterion) {
    let dataset = comment_dataset();
    let streams = build_user_streams(&dataset.comments, |a| dataset.category_of(a));
    c.bench_function("fig7/affinity_samples_depth1", |b| {
        b.iter(|| affinity_samples(black_box(&streams), 1))
    });
    // The metric kernel on a long synthetic category string.
    let long: Vec<CategoryId> = (0..10_000u32).map(|i| CategoryId(i % 7)).collect();
    c.bench_function("fig7/affinity_kernel_10k", |b| {
        b.iter(|| affinity(black_box(&long), 3))
    });
}

criterion_group!(
    benches,
    bench_fig5_streams,
    bench_fig6_group_affinity,
    bench_fig7_affinity_metric
);
criterion_main!(benches);

//! Criterion benches for the cache experiments (Fig. 19 and the policy
//! ablation): raw policy throughput and the full sweep.

use appstore_cache::{hit_ratio, sweep_cache_sizes, CategoryLru, Fifo, Lfu, Lru, SegmentedLru};
use appstore_core::Seed;
use appstore_models::{ClusterLayout, ClusteringParams, ModelKind, PopulationParams, Simulator};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn params() -> ClusteringParams {
    ClusteringParams {
        population: PopulationParams {
            apps: 2_000,
            users: 10_000,
            downloads_per_user: 4,
            zipf_exponent: 1.7,
        },
        clusters: 30,
        p: 0.9,
        cluster_exponent: 1.4,
        layout: ClusterLayout::Interleaved,
    }
}

/// Fig. 19: per-policy throughput over a 40k-request clustering trace.
fn bench_fig19_policy_throughput(c: &mut Criterion) {
    let p = params();
    let trace = Simulator::for_kind(ModelKind::AppClustering, p).simulate_trace(Seed::new(11), 30);
    let capacity = 100;
    let category_of: Vec<u32> = (0..p.population.apps)
        .map(|i| p.layout.place(i, p.population.apps, p.clusters).0 as u32)
        .collect();
    let mut group = c.benchmark_group("fig19/replay_40k_requests");
    group.sample_size(20);
    group.bench_function("LRU", |b| {
        b.iter_batched(
            || Lru::new(capacity),
            |mut policy| hit_ratio(&mut policy, &[], black_box(&trace.events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("FIFO", |b| {
        b.iter_batched(
            || Fifo::new(capacity),
            |mut policy| hit_ratio(&mut policy, &[], black_box(&trace.events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("LFU", |b| {
        b.iter_batched(
            || Lfu::new(capacity),
            |mut policy| hit_ratio(&mut policy, &[], black_box(&trace.events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("SLRU", |b| {
        b.iter_batched(
            || SegmentedLru::new(capacity),
            |mut policy| hit_ratio(&mut policy, &[], black_box(&trace.events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("Category-LRU", |b| {
        b.iter_batched(
            || CategoryLru::new(capacity, category_of.clone(), 64),
            |mut policy| hit_ratio(&mut policy, &[], black_box(&trace.events)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Fig. 19: the trace generation feeding the sweep.
fn bench_fig19_trace_generation(c: &mut Criterion) {
    let p = params();
    let sim = Simulator::for_kind(ModelKind::AppClustering, p);
    let mut group = c.benchmark_group("fig19/trace_generation");
    group.sample_size(10);
    group.bench_function("clustering_40k_events", |b| {
        b.iter(|| sim.simulate_trace(black_box(Seed::new(12)), 30))
    });
    group.finish();
}

/// Fig. 19: one LRU-only sweep point (all three models, one size).
fn bench_fig19_sweep_point(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("fig19/sweep");
    group.sample_size(10);
    group.bench_function("three_models_one_size", |b| {
        b.iter(|| sweep_cache_sizes(black_box(p), &[0.05], Seed::new(13), false, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig19_policy_throughput,
    bench_fig19_trace_generation,
    bench_fig19_sweep_point
);
criterion_main!(benches);

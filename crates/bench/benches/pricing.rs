//! Criterion benches for the pricing and revenue analyses (Figs. 11–18):
//! tier-split power-law fits, price binning and correlation, developer
//! income aggregation, category shares, and the Eq. 7 break-even
//! computations.

use appstore_core::{PricingTier, Seed, StoreId};
use appstore_revenue::{
    ad_fraction_of_free_apps, breakeven_by_category, breakeven_by_tier, breakeven_over_time,
    breakeven_overall, category_shares, developer_incomes, developer_strategies, price_bins,
    price_correlations,
};
use appstore_stats::zipf_fit_loglog;
use appstore_synth::{generate, StoreProfile};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn slideme() -> appstore_core::Dataset {
    generate(
        &StoreProfile::slideme().scaled_down(2),
        StoreId(3),
        Seed::new(10),
    )
    .dataset
}

/// Fig. 11: splitting the curve by tier and fitting both power laws.
fn bench_fig11_tier_split(c: &mut Criterion) {
    let d = slideme();
    c.bench_function("fig11/tier_split_and_fit", |b| {
        b.iter(|| {
            let last = d.last();
            let mut free = Vec::new();
            let mut paid = Vec::new();
            for obs in &last.observations {
                match d.apps[obs.app.index()].tier {
                    PricingTier::Free => free.push(obs.downloads),
                    PricingTier::Paid => paid.push(obs.downloads),
                }
            }
            free.sort_unstable_by(|a, b| b.cmp(a));
            paid.sort_unstable_by(|a, b| b.cmp(a));
            (zipf_fit_loglog(&free), zipf_fit_loglog(&paid))
        })
    });
}

/// Fig. 12: one-dollar price bins and the two correlations.
fn bench_fig12_price_bins(c: &mut Criterion) {
    let d = slideme();
    c.bench_function("fig12/price_bins", |b| {
        b.iter(|| price_bins(black_box(&d), 50))
    });
    c.bench_function("fig12/price_correlations", |b| {
        b.iter(|| price_correlations(black_box(&d), 50))
    });
}

/// Figs. 13–14: per-developer income aggregation.
fn bench_fig13_incomes(c: &mut Criterion) {
    let d = slideme();
    c.bench_function("fig13/developer_incomes", |b| {
        b.iter(|| developer_incomes(black_box(&d)))
    });
}

/// Figs. 15–16: category shares and strategy mix.
fn bench_fig15_categories(c: &mut Criterion) {
    let d = slideme();
    c.bench_function("fig15/category_shares", |b| {
        b.iter(|| category_shares(black_box(&d)))
    });
    c.bench_function("fig16/developer_strategies", |b| {
        b.iter(|| developer_strategies(black_box(&d)))
    });
}

/// Figs. 17–18: the Eq. 7 break-even family (including the full
/// per-snapshot time series).
fn bench_fig17_breakeven(c: &mut Criterion) {
    let d = slideme();
    c.bench_function("fig17/breakeven_overall", |b| {
        b.iter(|| breakeven_overall(black_box(&d)))
    });
    c.bench_function("fig17/breakeven_by_tier", |b| {
        b.iter(|| breakeven_by_tier(black_box(&d)))
    });
    c.bench_function("fig17/breakeven_over_time", |b| {
        b.iter(|| breakeven_over_time(black_box(&d)))
    });
    c.bench_function("fig18/breakeven_by_category", |b| {
        b.iter(|| breakeven_by_category(black_box(&d)))
    });
    c.bench_function("fig17/ad_detection", |b| {
        b.iter(|| ad_fraction_of_free_apps(black_box(&d.apps)))
    });
}

criterion_group!(
    benches,
    bench_fig11_tier_split,
    bench_fig12_price_bins,
    bench_fig13_incomes,
    bench_fig15_categories,
    bench_fig17_breakeven
);
criterion_main!(benches);

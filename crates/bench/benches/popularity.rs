//! Criterion benches for the popularity characterization (Table 1,
//! Figs. 2–4): store generation, Pareto shares, power-law fits, update
//! CDFs.

use appstore_core::{Seed, StoreId};
use appstore_stats::{top_share, top_share_curve, zipf_fit_loglog, zipf_fit_mle, Ecdf};
use appstore_synth::{generate, StoreProfile};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn ranked_downloads() -> Vec<u64> {
    let profile = StoreProfile::anzhi().scaled_down(8);
    generate(&profile, StoreId(0), Seed::new(1))
        .dataset
        .final_downloads_ranked()
}

/// Table 1: the cost of generating a calibrated store end to end.
fn bench_table1_generation(c: &mut Criterion) {
    let profile = StoreProfile::anzhi().scaled_down(16);
    c.bench_function("table1/generate_store", |b| {
        b.iter(|| generate(black_box(&profile), StoreId(0), Seed::new(2)))
    });
}

/// Fig. 2: Pareto share computation on a full popularity curve.
fn bench_fig2_pareto(c: &mut Criterion) {
    let ranked = ranked_downloads();
    c.bench_function("fig2/top_share", |b| {
        b.iter(|| top_share(black_box(&ranked), 0.10))
    });
    c.bench_function("fig2/top_share_curve_100pts", |b| {
        b.iter(|| top_share_curve(black_box(&ranked), 100))
    });
}

/// Fig. 3: power-law fitting over the measured curve.
fn bench_fig3_powerlaw(c: &mut Criterion) {
    let ranked = ranked_downloads();
    c.bench_function("fig3/zipf_fit_loglog", |b| {
        b.iter(|| zipf_fit_loglog(black_box(&ranked)))
    });
    c.bench_function("fig3/zipf_fit_mle", |b| {
        b.iter(|| zipf_fit_mle(black_box(&ranked)))
    });
}

/// Fig. 4: update-count ECDF construction and evaluation.
fn bench_fig4_updates(c: &mut Criterion) {
    let profile = StoreProfile::anzhi().scaled_down(8);
    let dataset = generate(&profile, StoreId(0), Seed::new(3)).dataset;
    let updates = dataset.updates_per_app();
    c.bench_function("fig4/updates_ecdf", |b| {
        b.iter(|| {
            let ecdf = Ecdf::from_counts(black_box(&updates));
            (ecdf.eval(0.0), ecdf.eval(3.0), ecdf.quantile(0.99))
        })
    });
}

criterion_group!(
    benches,
    bench_table1_generation,
    bench_fig2_pareto,
    bench_fig3_powerlaw,
    bench_fig4_updates
);
criterion_main!(benches);

//! Criterion benches for the data-collection pipeline (the paper's §2.2
//! architecture): wire encode/decode, the rate-limited server path, and
//! full campaign crawls with and without faults.

use appstore_core::{Seed, StoreId};
use appstore_crawler::{
    run_campaign, FaultPlan, MarketplaceServer, ProxyPool, Region, Request, ServerPolicy,
};
use appstore_synth::{generate, StoreProfile};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn ground_truth() -> appstore_core::Dataset {
    let mut profile = StoreProfile::anzhi().scaled_down(32);
    profile.commenter_fraction = 0.5;
    profile.comment_rate = 0.2;
    generate(&profile, StoreId(0), Seed::new(14)).dataset
}

/// The wire layer: serving and parsing one app page.
fn bench_wire_roundtrip(c: &mut Criterion) {
    let truth = ground_truth();
    let server = MarketplaceServer::new(
        &truth,
        ServerPolicy {
            requests_per_second: 1e9,
            burst: u32::MAX,
            ..ServerPolicy::default()
        },
    );
    let day = truth.last().day;
    let app = truth.last().observations[0].app;
    let mut now = 0u64;
    c.bench_function("crawl/app_page_roundtrip", |b| {
        b.iter(|| {
            now += 1;
            let (payload, _) = server
                .handle(0, Region::Europe, now, Request::AppPage { app, day })
                .expect("page served");
            appstore_crawler::wire::decode_response(black_box(&payload)).expect("parse")
        })
    });
}

/// A full clean campaign (every snapshot, every comment page).
fn bench_clean_campaign(c: &mut Criterion) {
    let truth = ground_truth();
    let mut group = c.benchmark_group("crawl/full_campaign");
    group.sample_size(10);
    group.bench_function("clean", |b| {
        b.iter_batched(
            || ProxyPool::planetlab(0, 10),
            |mut pool| {
                let server = MarketplaceServer::new(
                    &truth,
                    ServerPolicy {
                        requests_per_second: 10_000.0,
                        burst: 10_000,
                        ..ServerPolicy::default()
                    },
                );
                run_campaign(
                    &server,
                    &truth,
                    &mut pool,
                    None,
                    FaultPlan::default(),
                    Seed::new(15),
                )
                .expect("campaign completes")
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("faulty_10pct", |b| {
        b.iter_batched(
            || ProxyPool::planetlab(0, 10),
            |mut pool| {
                let server = MarketplaceServer::new(
                    &truth,
                    ServerPolicy {
                        requests_per_second: 10_000.0,
                        burst: 10_000,
                        ..ServerPolicy::default()
                    },
                );
                run_campaign(
                    &server,
                    &truth,
                    &mut pool,
                    None,
                    FaultPlan {
                        drop_chance: 0.05,
                        corrupt_chance: 0.05,
                    },
                    Seed::new(16),
                )
                .expect("campaign completes")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_wire_roundtrip, bench_clean_campaign);
criterion_main!(benches);

//! Criterion benches for the workload models (Figs. 8–10): Zipf
//! sampling, the three Monte-Carlo simulators, the closed forms, the
//! Eq. 6 distance, and the grid-search fitting stages.

use appstore_core::Seed;
use appstore_models::{
    expected_downloads_clustering_weighted, expected_downloads_zipf_amo, fit_clustering,
    ClusterLayout, ClusteringParams, CoarseMode, FitSpec, ModelKind, PopulationParams,
    SampleMethod, ScreeningCache, Simulator, ZipfFamily, ZipfSampler,
};
use appstore_stats::mean_relative_error;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;

fn params() -> ClusteringParams {
    ClusteringParams {
        population: PopulationParams {
            apps: 2_000,
            users: 10_000,
            downloads_per_user: 5,
            zipf_exponent: 1.5,
        },
        clusters: 30,
        p: 0.9,
        cluster_exponent: 1.4,
        layout: ClusterLayout::Interleaved,
    }
}

/// The sampling kernel every simulator spins on: inverse-CDF (the
/// pinned default, O(log n) per draw) vs the Walker/Vose alias table
/// (O(1) per draw), for both the build and the draw sides.
fn bench_zipf_sampler(c: &mut Criterion) {
    let inverse = ZipfSampler::new(60_000, 1.7);
    let alias = ZipfSampler::with_method(60_000, 1.7, SampleMethod::Alias);
    let mut rng = Seed::new(5).rng();
    c.bench_function("fig8/zipf_sample_60k_ranks", |b| {
        b.iter(|| black_box(inverse.sample(&mut rng)))
    });
    c.bench_function("fig8/zipf_sample_60k_ranks_alias", |b| {
        b.iter(|| black_box(alias.sample(&mut rng)))
    });
    c.bench_function("fig8/zipf_sampler_build_60k", |b| {
        b.iter(|| ZipfSampler::new(black_box(60_000), 1.7))
    });
    c.bench_function("fig8/zipf_sampler_build_60k_alias", |b| {
        b.iter(|| ZipfSampler::with_method(black_box(60_000), 1.7, SampleMethod::Alias))
    });
}

/// Fig. 8: one Monte-Carlo replication per model (50k downloads each).
fn bench_fig8_simulators(c: &mut Criterion) {
    let p = params();
    let mut group = c.benchmark_group("fig8/simulate_50k_downloads");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        let sim = Simulator::for_kind(kind, p);
        group.bench_function(kind.name(), |b| {
            b.iter(|| sim.simulate_counts(black_box(Seed::new(6))))
        });
    }
    group.finish();
}

/// Fig. 8: the analytic screening expectations.
fn bench_fig8_closed_forms(c: &mut Criterion) {
    let p = params();
    c.bench_function("fig8/expectation_clustering_weighted", |b| {
        b.iter(|| expected_downloads_clustering_weighted(black_box(&p)))
    });
    c.bench_function("fig8/expectation_zipf_amo", |b| {
        b.iter(|| expected_downloads_zipf_amo(black_box(&p.population)))
    });
}

/// Fig. 9: the Eq. 6 distance kernel.
fn bench_fig9_distance(c: &mut Criterion) {
    let mut rng = Seed::new(7).rng();
    let observed: Vec<u64> = (1..=20_000u64)
        .map(|k| (1e9 / (k as f64).powf(1.4)) as u64)
        .collect();
    let simulated: Vec<u64> = observed
        .iter()
        .map(|&c| (c as f64 * (0.8 + 0.4 * rng.gen::<f64>())) as u64)
        .collect();
    c.bench_function("fig9/mean_relative_error_20k", |b| {
        b.iter(|| mean_relative_error(black_box(&observed), black_box(&simulated)))
    });
}

/// Fig. 9: the screening expectation over one grid "column" — fixed
/// exponents, the production `p` × user-fraction sweep (12 candidates).
/// The naive path re-runs the `O(apps)` `powf` sweeps per candidate;
/// the [`ScreeningCache`] miss-table path pays them once per distinct
/// draw count and turns the rest into multiply-add passes over a reused
/// arena — the exact shape of the fit-grid screening hot loop.
fn bench_fig9_screening_cache(c: &mut Criterion) {
    let base = params();
    let ps = [0.5, 0.8, 0.95];
    let user_fractions = [0.5, 1.0, 2.0, 4.0];
    let candidates: Vec<ClusteringParams> = ps
        .iter()
        .flat_map(|&p| {
            user_fractions.iter().map(move |&uf| {
                let mut candidate = base;
                candidate.p = p;
                candidate.population.users = (base.population.users as f64 * uf).round() as usize;
                candidate
            })
        })
        .collect();
    c.bench_function("fig9/screen_expectation_12cand_naive_powf", |b| {
        b.iter(|| {
            for candidate in &candidates {
                black_box(expected_downloads_clustering_weighted(black_box(candidate)));
            }
        })
    });
    c.bench_function("fig9/screen_expectation_12cand_miss_table", |b| {
        b.iter_batched(
            ScreeningCache::new,
            |mut cache| {
                let mut arena = Vec::new();
                for candidate in &candidates {
                    cache.expected_clustering_weighted_into(black_box(candidate), &mut arena);
                    black_box(arena.as_slice());
                }
            },
            BatchSize::SmallInput,
        )
    });
}

/// Fig. 9: the per-exponent Zipf weight family behind the coarse
/// screen — [`ZipfFamily::build`] shares one transcendental sweep
/// across adjacent exponents via incremental updates, vs building a
/// fresh [`ZipfSampler`] per exponent.
fn bench_fig9_zipf_family(c: &mut Criterion) {
    let exponents = [0.8, 1.0, 1.2, 1.4, 1.6, 1.8];
    c.bench_function("fig9/zipf_family_6_exponents_incremental", |b| {
        b.iter(|| ZipfFamily::build(black_box(20_000), black_box(&exponents)))
    });
    c.bench_function("fig9/zipf_family_6_exponents_fresh_samplers", |b| {
        b.iter(|| {
            for &s in &exponents {
                black_box(ZipfSampler::new(black_box(20_000), s));
            }
        })
    });
}

/// Fig. 10: a full (small-grid) clustering fit including refinement.
fn bench_fig10_fit(c: &mut Criterion) {
    let p = params();
    let mut observed = Simulator::app_clustering(p).simulate_counts(Seed::new(8));
    observed.sort_unstable_by(|a, b| b.cmp(a));
    let spec = FitSpec {
        zipf_exponents: vec![1.3, 1.5, 1.7],
        cluster_exponents: vec![1.2, 1.4],
        ps: vec![0.5, 0.9],
        user_fractions: vec![0.5, 1.0],
        clusters: 30,
        threads: 0,
        refine_top: 2,
        replications: 1,
        coarse: CoarseMode::Auto,
    };
    let mut group = c.benchmark_group("fig10/fit_clustering_small_grid");
    group.sample_size(10);
    group.bench_function("24_candidates_plus_refine", |b| {
        b.iter_batched(
            || (observed.clone(), spec.clone()),
            |(obs, spec)| fit_clustering(&obs, &spec, Seed::new(9)),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_zipf_sampler,
    bench_fig8_simulators,
    bench_fig8_closed_forms,
    bench_fig9_distance,
    bench_fig9_screening_cache,
    bench_fig9_zipf_family,
    bench_fig10_fit
);
criterion_main!(benches);

//! Criterion benches for the §7 implementations: recommender training
//! and query throughput, and the prefetch replay.

use appstore_cache::PrefetchSimulator;
use appstore_core::{AppId, Seed, StoreId, UserId};
use appstore_recommend::{CategoryRecency, ItemKnn, Popularity, Recommender};
use appstore_synth::{generate, GeneratedStore, StoreProfile};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

fn store() -> GeneratedStore {
    generate(
        &StoreProfile::anzhi().scaled_down(12),
        StoreId(0),
        Seed::new(17),
    )
}

/// Training cost of the three recommenders over the same event prefix.
fn bench_training(c: &mut Criterion) {
    let store = store();
    let events = &store.outcome.events;
    let dataset = &store.dataset;
    let mut group = c.benchmark_group("recommend/train");
    group.sample_size(10);
    group.bench_function("popularity", |b| {
        b.iter_batched(
            Popularity::new,
            |mut r| r.train(black_box(events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("item_knn_30", |b| {
        b.iter_batched(
            || ItemKnn::new(30),
            |mut r| r.train(black_box(events)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("category_recency", |b| {
        b.iter_batched(
            || CategoryRecency::new(|a: AppId| dataset.category_of(a), 5),
            |mut r| r.train(black_box(events)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Per-user query throughput after training.
fn bench_queries(c: &mut Criterion) {
    let store = store();
    let events = &store.outcome.events;
    let dataset = &store.dataset;
    let mut popularity = Popularity::new();
    popularity.train(events);
    let mut knn = ItemKnn::new(30);
    knn.train(events);
    let mut recency = CategoryRecency::new(|a: AppId| dataset.category_of(a), 5);
    recency.train(events);
    let mut group = c.benchmark_group("recommend/query_top20");
    let mut user = 0u32;
    group.bench_function("popularity", |b| {
        b.iter(|| {
            user = user.wrapping_add(1) % 10_000;
            popularity.recommend(black_box(UserId(user)), 20)
        })
    });
    group.bench_function("item_knn_30", |b| {
        b.iter(|| {
            user = user.wrapping_add(1) % 10_000;
            knn.recommend(black_box(UserId(user)), 20)
        })
    });
    group.bench_function("category_recency", |b| {
        b.iter(|| {
            user = user.wrapping_add(1) % 10_000;
            recency.recommend(black_box(UserId(user)), 20)
        })
    });
    group.finish();
}

/// Prefetch replay throughput over the full trace.
fn bench_prefetch(c: &mut Criterion) {
    let store = store();
    let trace = &store.outcome.events;
    let category_of: Vec<u32> = store.catalog.apps.iter().map(|a| a.category.0).collect();
    let mut group = c.benchmark_group("prefetch/replay");
    group.sample_size(10);
    group.bench_function("fanout3", |b| {
        b.iter(|| {
            let mut sim =
                PrefetchSimulator::new(&category_of, &store.catalog.free_by_category, 3, 12);
            sim.run(black_box(trace))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_queries, bench_prefetch);
criterion_main!(benches);

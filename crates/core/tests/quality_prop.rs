//! Property tests for `core::quality` gap repair: synthesized snapshots
//! must stay inside the range their observed neighbors bound, and repair
//! must be a no-op (idempotent) once a dataset is dense.

use appstore_core::quality::{assess, repair_gaps, GapRepair};
use appstore_core::{
    App, AppId, AppObservation, CategoryId, CategorySet, Cents, DailySnapshot, Dataset, Day,
    DeveloperId, PricingTier, Seed, StoreId, StoreMeta,
};
use proptest::prelude::*;
use rand::Rng;

/// Builds a dataset spanning `days` days with `apps` apps and monotone
/// random counters, then removes every day whose index hits a pseudo-
/// random predicate — keeping at least the first-observed and last day
/// so the span is anchored.
fn random_gappy_dataset(seed: u64, apps: usize, days: u16, gap_modulus: u16) -> Dataset {
    let mut rng = Seed::new(seed).rng();
    let registry: Vec<App> = (0..apps)
        .map(|i| App {
            id: AppId(i as u32),
            category: CategoryId(0),
            developer: DeveloperId(0),
            tier: PricingTier::Free,
            price: Cents::ZERO,
            created: Day(0),
            apk_size: 1,
            libraries: Vec::new(),
        })
        .collect();
    let mut downloads = vec![0u64; apps];
    let mut comments = vec![0u64; apps];
    let mut snapshots = Vec::new();
    for d in 0..days {
        for i in 0..apps {
            downloads[i] += rng.gen_range(0..50);
            comments[i] += rng.gen_range(0..5);
        }
        let keep = d == 0 || d == days - 1 || (d % gap_modulus.max(1)) != 0;
        if keep {
            snapshots.push(DailySnapshot {
                day: Day(u32::from(d)),
                observations: (0..apps)
                    .map(|i| AppObservation {
                        app: AppId(i as u32),
                        category: CategoryId(0),
                        developer: DeveloperId(0),
                        downloads: downloads[i],
                        comments: comments[i],
                        version: 1,
                        price: Cents::ZERO,
                    })
                    .collect(),
            });
        }
    }
    Dataset {
        store: StoreMeta {
            id: StoreId(0),
            name: "prop".into(),
            has_paid_apps: false,
        },
        categories: CategorySet::from_names(["all"]),
        apps: registry,
        developers: Vec::new(),
        snapshots,
        comments: Vec::new(),
        updates: Vec::new(),
    }
}

/// For each day the repair synthesized, every app's counters must lie
/// within the closed range spanned by the nearest observed snapshots on
/// either side (tail/lead gaps: equal to the single neighbor).
fn assert_within_neighbor_range(original: &Dataset, repaired: &Dataset, filled: &[Day]) {
    for &day in filled {
        let prev = original
            .snapshots
            .iter()
            .filter(|s| s.day < day)
            .max_by_key(|s| s.day);
        let next = original
            .snapshots
            .iter()
            .filter(|s| s.day > day)
            .min_by_key(|s| s.day);
        let synthesized = repaired
            .snapshots
            .iter()
            .find(|s| s.day == day)
            .expect("filled day present");
        for o in &synthesized.observations {
            let p = prev.and_then(|s| s.downloads_of(o.app));
            let n = next.and_then(|s| s.downloads_of(o.app));
            let (lo, hi) = match (p, n) {
                (Some(p), Some(n)) => (p.min(n), p.max(n)),
                (Some(p), None) => (p, p),
                (None, Some(n)) => (n, n),
                (None, None) => continue,
            };
            assert!(
                (lo..=hi).contains(&o.downloads),
                "day {:?} app {:?}: {} outside [{lo}, {hi}]",
                day,
                o.app,
                o.downloads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Neither strategy ever synthesizes a counter outside the range of
    /// its observed neighbors, and the repaired dataset is dense.
    #[test]
    fn repair_stays_within_neighbor_range(
        seed in 0u64..10_000,
        apps in 1usize..6,
        days in 3u16..20,
        gap_modulus in 2u16..5,
    ) {
        let data = random_gappy_dataset(seed, apps, days, gap_modulus);
        for strategy in [GapRepair::CarryForward, GapRepair::LinearInterpolation] {
            let (repaired, report) = repair_gaps(&data, strategy);
            prop_assert!(assess(&repaired).is_complete());
            assert_within_neighbor_range(&data, &repaired, &report.days_filled);
        }
    }

    /// On an already-complete dataset both strategies return the input
    /// unchanged, and repairing a repaired dataset changes nothing.
    #[test]
    fn repair_is_idempotent(
        seed in 0u64..10_000,
        apps in 1usize..6,
        days in 3u16..20,
        gap_modulus in 2u16..5,
    ) {
        // gap_modulus == days' worth of "keep everything": build dense
        // directly by never dropping (predicate keeps d % m != 0 only for
        // interior days, so use the repaired output as the dense input).
        let gappy = random_gappy_dataset(seed, apps, days, gap_modulus);
        for strategy in [GapRepair::CarryForward, GapRepair::LinearInterpolation] {
            let (dense, _) = repair_gaps(&gappy, strategy);
            let (again, report) = repair_gaps(&dense, strategy);
            prop_assert_eq!(&again, &dense, "second repair must be a no-op");
            prop_assert!(report.days_filled.is_empty());
        }
    }

    /// Repaired counter series stay monotone per app wherever the
    /// original series was monotone (both strategies preserve it by
    /// construction: freeze or round-down interpolation).
    #[test]
    fn repair_preserves_monotonicity(
        seed in 0u64..10_000,
        apps in 1usize..4,
        days in 4u16..16,
    ) {
        let data = random_gappy_dataset(seed, apps, days, 3);
        for strategy in [GapRepair::CarryForward, GapRepair::LinearInterpolation] {
            let (repaired, _) = repair_gaps(&data, strategy);
            for i in 0..apps {
                let app = AppId(i as u32);
                let series: Vec<u64> = repaired
                    .snapshots
                    .iter()
                    .filter_map(|s| s.downloads_of(app))
                    .collect();
                prop_assert!(
                    series.windows(2).all(|w| w[0] <= w[1]),
                    "app {:?} series not monotone: {:?}", app, series
                );
            }
        }
    }
}

//! Dataset quality assessment and gap repair.
//!
//! A real crawl is never perfect: process crashes, proxy bans, and
//! journal corruption leave a dataset with missing days or partially
//! observed snapshots. The paper's analyses implicitly assume a dense
//! daily time series; this module makes the gap between that assumption
//! and a recovered dataset explicit:
//!
//! * [`DatasetQuality`] measures the damage — missing days, partial
//!   snapshots, per-day and overall coverage — so every experiment can
//!   annotate its results with how much data actually backs them;
//! * [`repair_gaps`] fills missing days with a declared strategy
//!   ([`GapRepair::CarryForward`] or [`GapRepair::LinearInterpolation`])
//!   so day-indexed analyses (popularity curves, model fits, affinity)
//!   still run on gappy data, with the repair reported rather than
//!   hidden.
//!
//! Repair never fabricates *events* (comments, updates): only the
//! cumulative per-app counters of missing snapshots are reconstructed,
//! which is exactly what the counter-based analyses consume.

use crate::dataset::Dataset;
use crate::snapshot::{AppObservation, DailySnapshot};
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// A snapshot that observes fewer apps than the registry says existed
/// on that day (failed pages or damaged journal records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSnapshot {
    /// The affected day.
    pub day: Day,
    /// Apps actually observed.
    pub observed: usize,
    /// Apps the registry says existed by that day.
    pub expected: usize,
}

/// Quality assessment of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetQuality {
    /// First day the dataset is supposed to cover.
    pub first_day: Day,
    /// Last day the dataset is supposed to cover.
    pub last_day: Day,
    /// Days the span should contain.
    pub expected_days: usize,
    /// Days with a snapshot present.
    pub observed_days: usize,
    /// Days of the span with no snapshot at all.
    pub missing_days: Vec<Day>,
    /// Days whose snapshot observes fewer apps than expected.
    pub partial_snapshots: Vec<PartialSnapshot>,
    /// Registry size, used to estimate per-day expected observations in
    /// [`DatasetQuality::observation_coverage`].
    pub apps_per_day_hint: usize,
}

impl DatasetQuality {
    /// Fraction of expected days that have a snapshot, in [0, 1].
    pub fn day_coverage(&self) -> f64 {
        if self.expected_days == 0 {
            1.0
        } else {
            self.observed_days as f64 / self.expected_days as f64
        }
    }

    /// Fraction of expected app-observations actually present, over the
    /// whole span (missing days count as zero observations).
    pub fn observation_coverage(&self) -> f64 {
        let mut observed = 0usize;
        let mut wanted = 0usize;
        for p in &self.partial_snapshots {
            observed += p.observed;
            wanted += p.expected;
        }
        // partial_snapshots only lists damaged days; complete days
        // contribute equal observed/expected and missing days 0/expected,
        // so reconstruct the totals from the counts we tracked.
        let complete_days = self
            .observed_days
            .saturating_sub(self.partial_snapshots.len());
        observed += complete_days * self.apps_per_day_hint;
        wanted += (complete_days + self.missing_days.len()) * self.apps_per_day_hint;
        if wanted == 0 {
            1.0
        } else {
            observed as f64 / wanted as f64
        }
    }

    /// True when the dataset has the dense daily series the analyses
    /// assume.
    pub fn is_complete(&self) -> bool {
        self.missing_days.is_empty() && self.partial_snapshots.is_empty()
    }

    /// One-line human-readable summary for experiment annotations, e.g.
    /// `coverage 28/30 days (93.3%), 2 missing, 1 partial`.
    pub fn annotation(&self) -> String {
        format!(
            "coverage {}/{} days ({:.1}%), {} missing, {} partial",
            self.observed_days,
            self.expected_days,
            100.0 * self.day_coverage(),
            self.missing_days.len(),
            self.partial_snapshots.len()
        )
    }
}

/// How to reconstruct a missing day's snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapRepair {
    /// Copy the closest earlier snapshot (counters freeze across the
    /// gap). Conservative: never invents growth.
    CarryForward,
    /// Linearly interpolate each app's cumulative counters between the
    /// neighboring observed days (rounded down, so monotonicity holds).
    /// Falls back to carry-forward at the tail (no later neighbor).
    LinearInterpolation,
}

/// What [`repair_gaps`] did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Strategy used.
    pub strategy: GapRepair,
    /// Days that were synthesized.
    pub days_filled: Vec<Day>,
    /// Quality before repair.
    pub before: DatasetQuality,
}

impl RepairReport {
    /// One-line summary, e.g.
    /// `carry-forward filled 2 gap days; before: coverage …`.
    pub fn annotation(&self) -> String {
        let strategy = match self.strategy {
            GapRepair::CarryForward => "carry-forward",
            GapRepair::LinearInterpolation => "linear-interpolation",
        };
        format!(
            "{strategy} filled {} gap day(s); before: {}",
            self.days_filled.len(),
            self.before.annotation()
        )
    }
}

/// Assesses a dataset against the day span it claims to cover (first to
/// last snapshot day, inclusive).
pub fn assess(dataset: &Dataset) -> DatasetQuality {
    let first = dataset.snapshots.iter().map(|s| s.day).min();
    let last = dataset.snapshots.iter().map(|s| s.day).max();
    let (Some(first), Some(last)) = (first, last) else {
        return DatasetQuality {
            first_day: Day(0),
            last_day: Day(0),
            expected_days: 0,
            observed_days: 0,
            missing_days: Vec::new(),
            partial_snapshots: Vec::new(),
            apps_per_day_hint: dataset.apps.len(),
        };
    };
    assess_span(dataset, first, last)
}

/// Assesses a dataset against an explicit campaign span — use this when
/// the intended span is known out of band (e.g. the crawl plan), so
/// missing days at the edges are also counted.
pub fn assess_span(dataset: &Dataset, first: Day, last: Day) -> DatasetQuality {
    let expected_days = (last.0 - first.0 + 1) as usize;
    let mut missing_days = Vec::new();
    let mut partial = Vec::new();
    let mut observed_days = 0usize;
    for d in first.0..=last.0 {
        let day = Day(d);
        match dataset.snapshots.iter().find(|s| s.day == day) {
            Some(snapshot) => {
                observed_days += 1;
                // Apps that existed by this day, per the registry.
                let expected = dataset.apps.iter().filter(|a| a.created <= day).count();
                if snapshot.observations.len() < expected {
                    partial.push(PartialSnapshot {
                        day,
                        observed: snapshot.observations.len(),
                        expected,
                    });
                }
            }
            None => missing_days.push(day),
        }
    }
    DatasetQuality {
        first_day: first,
        last_day: last,
        expected_days,
        observed_days,
        missing_days,
        partial_snapshots: partial,
        apps_per_day_hint: dataset.apps.len(),
    }
}

/// Fills every missing day of the dataset's span with a synthesized
/// snapshot, returning the repaired dataset and a report. Events are
/// never fabricated; only snapshot counter series are densified. A
/// dataset with no gaps is returned unchanged (empty report).
pub fn repair_gaps(dataset: &Dataset, strategy: GapRepair) -> (Dataset, RepairReport) {
    let before = assess(dataset);
    let mut repaired = dataset.clone();
    let mut days_filled = Vec::new();
    for &day in &before.missing_days {
        let prev = repaired
            .snapshots
            .iter()
            .filter(|s| s.day < day)
            .max_by_key(|s| s.day);
        let next = dataset
            .snapshots
            .iter()
            .filter(|s| s.day > day)
            .min_by_key(|s| s.day);
        let synthesized = match (strategy, prev, next) {
            (_, None, Some(next)) => {
                // Gap before the first observation: carry backward.
                DailySnapshot {
                    day,
                    observations: next
                        .observations
                        .iter()
                        .filter(|o| {
                            // Only apps that existed on the gap day.
                            dataset
                                .apps
                                .get(o.app.index())
                                .is_none_or(|a| a.created <= day)
                        })
                        .copied()
                        .collect(),
                }
            }
            (GapRepair::CarryForward, Some(prev), _) | (_, Some(prev), None) => DailySnapshot {
                day,
                observations: prev.observations.clone(),
            },
            (GapRepair::LinearInterpolation, Some(prev), Some(next)) => {
                interpolate(prev, next, day)
            }
            (_, None, None) => continue, // nothing to repair from
        };
        repaired.snapshots.push(synthesized);
        repaired.snapshots.sort_by_key(|s| s.day);
        days_filled.push(day);
    }
    appstore_obs::counter(appstore_obs::names::CORE_QUALITY_REPAIRS, 1);
    appstore_obs::counter(
        appstore_obs::names::CORE_QUALITY_GAP_DAYS_FILLED,
        days_filled.len() as u64,
    );
    (
        repaired,
        RepairReport {
            strategy,
            days_filled,
            before,
        },
    )
}

/// Linear interpolation of cumulative counters between two snapshots.
/// Counters round down (monotonicity is preserved); discrete fields
/// (version, price, category) carry forward from `prev`. Apps appearing
/// only in `next` (created inside the gap, exact day unknown) are
/// omitted — the registry's `created` day decides their first snapshot.
fn interpolate(prev: &DailySnapshot, next: &DailySnapshot, day: Day) -> DailySnapshot {
    let span = (next.day.0 - prev.day.0) as f64;
    let t = (day.0 - prev.day.0) as f64 / span;
    let observations = prev
        .observations
        .iter()
        .map(|p| {
            let interpolated = next
                .observations
                .binary_search_by_key(&p.app, |o| o.app)
                .ok()
                .map(|i| next.observations[i]);
            match interpolated {
                Some(n) => AppObservation {
                    downloads: lerp(p.downloads, n.downloads, t),
                    comments: lerp(p.comments, n.comments, t),
                    ..*p
                },
                // App vanished from `next` (partial snapshot): freeze.
                None => *p,
            }
        })
        .collect();
    DailySnapshot { day, observations }
}

fn lerp(a: u64, b: u64, t: f64) -> u64 {
    let lo = a.min(b);
    let hi = a.max(b);
    let v = a as f64 + (b as f64 - a as f64) * t;
    (v as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{App, PricingTier};
    use crate::category::CategorySet;
    use crate::dataset::{Dataset, StoreMeta};
    use crate::ids::{AppId, CategoryId, DeveloperId, StoreId};
    use crate::money::Cents;

    fn obs(app: u32, downloads: u64, comments: u64) -> AppObservation {
        AppObservation {
            app: AppId(app),
            category: CategoryId(0),
            developer: DeveloperId(0),
            downloads,
            comments,
            version: 1,
            price: Cents::ZERO,
        }
    }

    fn app(id: u32) -> App {
        App {
            id: AppId(id),
            category: CategoryId(0),
            developer: DeveloperId(0),
            tier: PricingTier::Free,
            price: Cents::ZERO,
            created: Day(0),
            apk_size: 1,
            libraries: Vec::new(),
        }
    }

    fn gappy_dataset() -> Dataset {
        // Days 0, 1, 4 present; 2 and 3 missing.
        Dataset {
            store: StoreMeta {
                id: StoreId(0),
                name: "test".into(),
                has_paid_apps: false,
            },
            categories: CategorySet::from_names(["all"]),
            apps: vec![app(0), app(1)],
            developers: Vec::new(),
            snapshots: vec![
                DailySnapshot {
                    day: Day(0),
                    observations: vec![obs(0, 0, 0), obs(1, 100, 2)],
                },
                DailySnapshot {
                    day: Day(1),
                    observations: vec![obs(0, 10, 1), obs(1, 110, 2)],
                },
                DailySnapshot {
                    day: Day(4),
                    observations: vec![obs(0, 40, 4), obs(1, 140, 8)],
                },
            ],
            comments: Vec::new(),
            updates: Vec::new(),
        }
    }

    #[test]
    fn assessment_finds_missing_and_partial_days() {
        let mut data = gappy_dataset();
        // Make day 1 partial: drop app 1's observation.
        data.snapshots[1].observations.truncate(1);
        let quality = assess(&data);
        assert_eq!(quality.expected_days, 5);
        assert_eq!(quality.observed_days, 3);
        assert_eq!(quality.missing_days, vec![Day(2), Day(3)]);
        assert_eq!(quality.partial_snapshots.len(), 1);
        assert_eq!(quality.partial_snapshots[0].day, Day(1));
        assert_eq!(quality.partial_snapshots[0].observed, 1);
        assert_eq!(quality.partial_snapshots[0].expected, 2);
        assert!((quality.day_coverage() - 0.6).abs() < 1e-12);
        assert!(!quality.is_complete());
        assert!(quality.annotation().contains("3/5 days"));
    }

    #[test]
    fn complete_dataset_assesses_clean() {
        let mut data = gappy_dataset();
        data.snapshots.remove(2); // drop day 4 => span 0..=1, dense
        let quality = assess(&data);
        assert!(quality.is_complete());
        assert_eq!(quality.day_coverage(), 1.0);
        assert_eq!(quality.observation_coverage(), 1.0);
    }

    #[test]
    fn carry_forward_freezes_counters_across_the_gap() {
        let data = gappy_dataset();
        let (repaired, report) = repair_gaps(&data, GapRepair::CarryForward);
        assert_eq!(report.days_filled, vec![Day(2), Day(3)]);
        assert_eq!(repaired.snapshots.len(), 5);
        assert!(assess(&repaired).is_complete());
        let day2 = &repaired.snapshots[2];
        assert_eq!(day2.day, Day(2));
        assert_eq!(day2.downloads_of(AppId(0)), Some(10), "frozen at day 1");
        assert!(repaired.validate().is_ok());
    }

    #[test]
    fn interpolation_splits_the_gap_monotonically() {
        let data = gappy_dataset();
        let (repaired, report) = repair_gaps(&data, GapRepair::LinearInterpolation);
        assert_eq!(report.days_filled, vec![Day(2), Day(3)]);
        // Day 1 -> 4 goes 10 -> 40 for app 0: day 2 = 20, day 3 = 30.
        assert_eq!(repaired.snapshots[2].downloads_of(AppId(0)), Some(20));
        assert_eq!(repaired.snapshots[3].downloads_of(AppId(0)), Some(30));
        assert_eq!(repaired.snapshots[2].downloads_of(AppId(1)), Some(120));
        assert!(repaired.validate().is_ok());
    }

    #[test]
    fn tail_gap_carries_forward_under_interpolation() {
        let mut data = gappy_dataset();
        // Remove day 4: span becomes 0..=1 — no gap; instead drop day 1
        // and keep 0 and 4, then also drop day 4's entry for app 0 to
        // exercise the freeze path.
        data.snapshots.remove(1);
        data.snapshots[1].observations.retain(|o| o.app == AppId(1));
        let (repaired, _) = repair_gaps(&data, GapRepair::LinearInterpolation);
        // Gap days 1..=3: app 0 has no later neighbor -> frozen at day 0.
        assert_eq!(repaired.snapshots[1].downloads_of(AppId(0)), Some(0));
        // App 1 interpolates 100 -> 140 over 4 days: day 1 = 110.
        assert_eq!(repaired.snapshots[1].downloads_of(AppId(1)), Some(110));
    }

    #[test]
    fn no_gaps_is_a_no_op() {
        let mut data = gappy_dataset();
        data.snapshots.remove(2);
        let (repaired, report) = repair_gaps(&data, GapRepair::CarryForward);
        assert_eq!(repaired, data);
        assert!(report.days_filled.is_empty());
        assert!(report.annotation().contains("filled 0 gap day(s)"));
    }

    #[test]
    fn explicit_span_counts_edge_gaps() {
        let data = gappy_dataset();
        let quality = assess_span(&data, Day(0), Day(6));
        assert_eq!(quality.expected_days, 7);
        assert_eq!(quality.missing_days, vec![Day(2), Day(3), Day(5), Day(6)]);
    }
}

//! Columnar on-disk spill files for the out-of-core pipeline.
//!
//! The streaming analysis path generates events directly into compact
//! on-disk *spill files* instead of materializing them in memory, then
//! folds those files back shard by shard. A spill file is a sequence of
//! CRC32-sealed [`journal`](crate::journal) lines; each line frames one
//! *chunk* — a batch of rows stored column by column as delta-encoded
//! zigzag varints, base64-armored so the sealed line stays valid UTF-8:
//!
//! ```text
//! {crc32:08x} c <kind> <cols> <base64(varint-columns)>
//! ```
//!
//! Columns in one chunk may have *different* lengths — fold-state
//! checkpoints exploit this to store heterogeneous vectors side by side.
//! Corruption never produces a wrong number: a chunk whose seal or
//! encoding is damaged is quarantined (counted, skipped), and a torn
//! final line — the signature of a killed writer — is reported as a
//! truncated tail rather than an error.
//!
//! [`ShardPlan`] carves the user-id space into contiguous ranges so that
//! per-shard files, folded in shard order, replay events in globally
//! ascending user order — the invariant the affinity analyses rely on.

use crate::faults::{self, FaultKind};
use crate::journal::{seal, unseal, Unsealed};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Injection site: one sealed chunk appended to a spill file.
pub const SITE_SPILL_WRITE: &str = "core.spill.write";

// --- varint / zigzag / base64 codec ----------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(BASE64_ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(BASE64_ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        if chunk.len() > 1 {
            out.push(BASE64_ALPHABET[(triple >> 6) as usize & 0x3F] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(BASE64_ALPHABET[triple as usize & 0x3F] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn base64_decode(text: &str) -> Option<Vec<u8>> {
    fn value_of(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for quad in bytes.chunks(4) {
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || quad[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut triple = 0u32;
        for &c in &quad[..4 - pad] {
            triple = (triple << 6) | value_of(c)?;
        }
        triple <<= 6 * pad;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

/// Encodes columns (independent lengths allowed) into a chunk payload:
/// `"c <kind> <cols> <base64>"`, ready for sealing.
pub fn encode_chunk(kind: &str, columns: &[&[u64]]) -> String {
    let mut body = Vec::new();
    for column in columns {
        push_varint(&mut body, column.len() as u64);
        let mut previous = 0i64;
        for &value in *column {
            let current = value as i64;
            push_varint(&mut body, zigzag(current.wrapping_sub(previous)));
            previous = current;
        }
    }
    format!("c {kind} {} {}", columns.len(), base64_encode(&body))
}

/// Decodes a chunk payload produced by [`encode_chunk`]. Returns the
/// chunk kind and its columns, or `None` on any structural damage.
pub fn decode_chunk(payload: &str) -> Option<(String, Vec<Vec<u64>>)> {
    let mut parts = payload.splitn(4, ' ');
    if parts.next()? != "c" {
        return None;
    }
    let kind = parts.next()?.to_string();
    let cols: usize = parts.next()?.parse().ok()?;
    let body = base64_decode(parts.next()?)?;
    let mut pos = 0usize;
    let mut columns = Vec::with_capacity(cols);
    for _ in 0..cols {
        let len = read_varint(&body, &mut pos)? as usize;
        // A damaged length varint could claim an absurd column; bound it
        // by what the remaining bytes could possibly hold (≥1 byte each).
        if len > body.len().saturating_sub(pos) {
            return None;
        }
        let mut column = Vec::with_capacity(len);
        let mut previous = 0i64;
        for _ in 0..len {
            let delta = unzigzag(read_varint(&body, &mut pos)?);
            previous = previous.wrapping_add(delta);
            column.push(previous as u64);
        }
        columns.push(column);
    }
    if pos != body.len() {
        return None;
    }
    Some((kind, columns))
}

// --- shard plan ------------------------------------------------------

/// Carves `users` ids into `shards` contiguous ascending ranges.
///
/// Ranges are half-open `[start, end)` over raw user ids; every id maps
/// to exactly one shard and concatenating shards in index order covers
/// ids in ascending order — the property that makes per-shard folds
/// order-equivalent to a single global pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    users: u64,
    width: u64,
    shards: usize,
}

impl ShardPlan {
    /// Plans `shards` ranges over ids `0..users`. `shards` is clamped to
    /// at least 1; empty id spaces get one empty shard.
    pub fn new(users: u64, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let width = users.div_ceil(shards as u64).max(1);
        ShardPlan {
            users,
            width,
            shards,
        }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `user`. Ids at or past `users` land in the last
    /// shard, so late-registered ids (spam users) still have a home.
    pub fn shard_of(&self, user: u64) -> usize {
        ((user / self.width) as usize).min(self.shards - 1)
    }

    /// Half-open id range `[start, end)` of shard `shard`.
    pub fn range_of(&self, shard: usize) -> (u64, u64) {
        let start = self.width * shard as u64;
        let end = if shard + 1 == self.shards {
            u64::MAX
        } else {
            self.width * (shard as u64 + 1)
        };
        (start.min(self.users), end)
    }
}

// --- writer ----------------------------------------------------------

/// Appends sealed columnar chunks to one spill file.
///
/// The writer consults the fault injector at [`SITE_SPILL_WRITE`] once
/// per chunk (the chunk ordinal is the site index): an `IoError` is
/// retried once and only then surfaces; a `PartialWrite` leaves a torn,
/// newline-less prefix of the sealed line on disk; `Corrupt` flips one
/// payload byte after sealing, so the reader's CRC check must catch it.
pub struct SpillWriter {
    writer: BufWriter<File>,
    chunks: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Creates (truncating) the spill file at `path`.
    pub fn create(path: &Path) -> std::io::Result<SpillWriter> {
        Ok(SpillWriter {
            writer: BufWriter::new(File::create(path)?),
            chunks: 0,
            bytes: 0,
        })
    }

    /// Opens `path` for appending (creating it if absent), preserving
    /// existing chunks — the mode checkpoint logs use so a resumed merge
    /// extends the history instead of erasing it. If the file ends in a
    /// torn, newline-less line (killed writer), a newline is added first
    /// so the next sealed chunk starts clean; the torn line then reads
    /// as one quarantined/torn entry, never as part of a new chunk.
    pub fn open_append(path: &Path) -> std::io::Result<SpillWriter> {
        let needs_newline = match std::fs::read(path) {
            Ok(bytes) => !bytes.is_empty() && bytes.last() != Some(&b'\n'),
            Err(_) => false,
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut writer = BufWriter::new(file);
        if needs_newline {
            writer.write_all(b"\n")?;
        }
        Ok(SpillWriter {
            writer,
            chunks: 0,
            bytes: 0,
        })
    }

    /// Seals and appends one chunk. Returns the bytes appended.
    pub fn append(&mut self, kind: &str, columns: &[&[u64]]) -> std::io::Result<u64> {
        let index = self.chunks;
        self.chunks += 1;
        let mut line = seal(&encode_chunk(kind, columns)).into_bytes();
        let mut fault = faults::roll(SITE_SPILL_WRITE, index, 0);
        if fault == Some(FaultKind::IoError) {
            // Retry-once semantics, matching the journal writers: an
            // `AtIndex` rule clears on attempt 1, a second failure is real.
            fault = faults::roll(SITE_SPILL_WRITE, index, 1);
            if fault == Some(FaultKind::IoError) {
                return Err(std::io::Error::other("injected spill write failure"));
            }
        }
        match fault {
            Some(FaultKind::PartialWrite) => {
                // Torn write: half the sealed line, no newline — exactly
                // what a kill mid-append leaves behind.
                let keep = (line.len() / 2).max(1);
                line.truncate(keep);
                self.writer.write_all(&line)?;
                self.bytes += line.len() as u64;
                return Ok(line.len() as u64);
            }
            Some(FaultKind::Corrupt) => {
                // Flip a payload byte *after* sealing so the CRC check
                // must be the thing that catches it.
                let at = 9 + (index as usize % (line.len() - 9));
                line[at] ^= 0x20;
            }
            _ => {}
        }
        line.push(b'\n');
        self.writer.write_all(&line)?;
        self.bytes += line.len() as u64;
        Ok(line.len() as u64)
    }

    /// Chunks appended so far (including torn/corrupted ones).
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes buffered chunks and closes the writer, reporting totals
    /// to the volatile spill counters.
    pub fn finish(mut self) -> std::io::Result<(u64, u64)> {
        self.writer.flush()?;
        appstore_obs::counter_volatile(appstore_obs::names::SPILL_CHUNKS_WRITTEN, self.chunks);
        appstore_obs::counter_volatile(appstore_obs::names::SPILL_BYTES_WRITTEN, self.bytes);
        Ok((self.chunks, self.bytes))
    }
}

// --- reader ----------------------------------------------------------

/// What a [`SpillReader`] saw while scanning one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillHealth {
    /// Chunks decoded successfully.
    pub chunks_read: u64,
    /// Chunks skipped: seal mismatch or undecodable payload.
    pub quarantined: u64,
    /// True when the final line was torn (no newline / damaged) — the
    /// signature of a writer killed mid-append.
    pub torn_tail: bool,
}

/// Streams decoded chunks back out of a spill file.
///
/// Damage is contained, never propagated: an interior bad line counts as
/// quarantined and is skipped; a bad *final* line is reported as a torn
/// tail. Either way `next_chunk` keeps returning only verified chunks.
pub struct SpillReader {
    lines: std::iter::Peekable<std::io::Lines<BufReader<File>>>,
    health: SpillHealth,
    bytes_read: u64,
}

impl SpillReader {
    /// Opens the spill file at `path`.
    pub fn open(path: &Path) -> std::io::Result<SpillReader> {
        Ok(SpillReader {
            lines: BufReader::new(File::open(path)?).lines().peekable(),
            health: SpillHealth::default(),
            bytes_read: 0,
        })
    }

    /// The next verified chunk `(kind, columns)`, or `None` at the end
    /// of the readable file.
    pub fn next_chunk(&mut self) -> Option<(String, Vec<Vec<u64>>)> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                // An unreadable line (I/O error, invalid UTF-8) ends the
                // readable region; treat it like a torn tail.
                Err(_) => {
                    self.health.torn_tail = true;
                    return None;
                }
            };
            self.bytes_read += line.len() as u64 + 1;
            let decoded = match unseal(&line) {
                Unsealed::Valid(payload) => decode_chunk(payload),
                Unsealed::Mismatch | Unsealed::Bare(_) => None,
            };
            match decoded {
                Some(chunk) => {
                    self.health.chunks_read += 1;
                    return Some(chunk);
                }
                None if self.lines.peek().is_none() => {
                    // Damage on the last line is a torn tail, not silent
                    // data loss in the middle of the file.
                    self.health.torn_tail = true;
                    return None;
                }
                None => {
                    self.health.quarantined += 1;
                    appstore_obs::counter(appstore_obs::names::SPILL_CHUNKS_QUARANTINED, 1);
                }
            }
        }
    }

    /// Scan health so far (final after `next_chunk` returns `None`).
    pub fn health(&self) -> SpillHealth {
        self.health
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

/// Folds every verified chunk of `path` through `f`, reporting merge
/// totals to the volatile spill counters. Returns the file's health.
pub fn fold_spill_file(
    path: &Path,
    mut f: impl FnMut(&str, Vec<Vec<u64>>),
) -> std::io::Result<SpillHealth> {
    let mut reader = SpillReader::open(path)?;
    while let Some((kind, columns)) = reader.next_chunk() {
        f(&kind, columns);
    }
    let health = reader.health();
    appstore_obs::counter_volatile(appstore_obs::names::SPILL_CHUNKS_MERGED, health.chunks_read);
    appstore_obs::counter_volatile(appstore_obs::names::SPILL_BYTES_MERGED, reader.bytes_read());
    Ok(health)
}

/// Convenience: a spill file path `dir/<stem>.spill`.
pub fn spill_path(dir: &Path, stem: &str) -> PathBuf {
    dir.join(format!("{stem}.spill"))
}

// --- resident-memory probe -------------------------------------------

/// Peak resident set size of this process in bytes, from Linux
/// `/proc/self/status` (`VmHWM`). `None` on other platforms — callers
/// degrade to "cap not enforceable here".
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::faults::{with_injector, FaultInjector, FaultPlan, FaultTrigger};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spill-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 300, -301, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn base64_round_trip() {
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let text = base64_encode(&bytes);
            assert_eq!(base64_decode(&text).unwrap(), bytes, "len {len}");
        }
        assert_eq!(base64_decode("a"), None, "bad length");
        assert_eq!(base64_decode("a=b="), None, "interior padding");
        assert_eq!(base64_decode("a!=="), None, "bad alphabet");
    }

    #[test]
    fn chunk_round_trips_with_ragged_columns() {
        let a = vec![5u64, 5, 9, 1_000_000, 0];
        let b = vec![u64::MAX, 0, u64::MAX];
        let c: Vec<u64> = Vec::new();
        let payload = encode_chunk("dl", &[&a, &b, &c]);
        let (kind, columns) = decode_chunk(&payload).unwrap();
        assert_eq!(kind, "dl");
        assert_eq!(columns, vec![a, b, c]);
    }

    #[test]
    fn truncated_or_garbled_payloads_are_rejected() {
        let payload = encode_chunk("dl", &[&[1, 2, 3]]);
        assert!(decode_chunk(&payload[..payload.len() - 4]).is_none());
        assert!(decode_chunk("c dl 2 AAAA").is_none(), "missing column");
        assert!(decode_chunk("x dl 1 AAAA").is_none(), "wrong magic");
        assert!(decode_chunk("c dl huge AAAA").is_none(), "bad col count");
    }

    #[test]
    fn shard_plan_covers_ids_contiguously() {
        for (users, shards) in [(10u64, 3usize), (1, 8), (0, 4), (1000, 1), (7, 7)] {
            let plan = ShardPlan::new(users, shards);
            let mut previous = None;
            for id in 0..users {
                let shard = plan.shard_of(id);
                assert!(shard < plan.shards());
                if let Some(p) = previous {
                    assert!(shard >= p, "shards ascend with ids");
                }
                previous = Some(shard);
                let (start, end) = plan.range_of(shard);
                assert!(start <= id && id < end);
            }
            // Ids past the planned space land in the final shard.
            assert_eq!(plan.shard_of(users + 99), plan.shards() - 1);
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = spill_path(&dir, "events");
        let mut writer = SpillWriter::create(&path).unwrap();
        writer.append("dl", &[&[1, 2, 3], &[7, 7, 7]]).unwrap();
        writer
            .append("cm", &[&[9], &[0], &[4], &[1], &[5]])
            .unwrap();
        writer.finish().unwrap();

        let mut reader = SpillReader::open(&path).unwrap();
        let (kind, cols) = reader.next_chunk().unwrap();
        assert_eq!((kind.as_str(), cols.len()), ("dl", 2));
        let (kind, cols) = reader.next_chunk().unwrap();
        assert_eq!((kind.as_str(), cols.len()), ("cm", 5));
        assert!(reader.next_chunk().is_none());
        let health = reader.health();
        assert_eq!(health.chunks_read, 2);
        assert_eq!(health.quarantined, 0);
        assert!(!health.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_damage_quarantines_tail_damage_is_torn() {
        let dir = temp_dir("damage");
        let path = spill_path(&dir, "events");
        let mut writer = SpillWriter::create(&path).unwrap();
        for i in 0..3u64 {
            writer.append("dl", &[&[i, i + 1]]).unwrap();
        }
        writer.finish().unwrap();

        // Flip a byte in the middle line: quarantined, neighbors intact.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let flipped = lines[1].replace(' ', "_");
        lines[1] = flipped;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let mut chunks = Vec::new();
        let health = fold_spill_file(&path, |_, cols| chunks.push(cols)).unwrap();
        assert_eq!(health.chunks_read, 2);
        assert_eq!(health.quarantined, 1);
        assert!(!health.torn_tail);
        assert_eq!(chunks[0][0], vec![0, 1]);
        assert_eq!(chunks[1][0], vec![2, 3]);

        // Truncate the last line mid-way: torn tail, prefix intact.
        let mut torn = text.clone();
        torn.truncate(text.len() - 10);
        std::fs::write(&path, torn).unwrap();
        let mut count = 0;
        let health = fold_spill_file(&path, |_, _| count += 1).unwrap();
        assert_eq!(count, 2);
        assert!(health.torn_tail);
        assert_eq!(health.quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_corrupt_and_partial_writes_are_contained() {
        let dir = temp_dir("faults");
        let path = spill_path(&dir, "events");
        let injector = FaultInjector::new(
            FaultPlan::seeded(77)
                .rule(
                    SITE_SPILL_WRITE,
                    FaultKind::Corrupt,
                    FaultTrigger::AtIndex(1),
                )
                .rule(
                    SITE_SPILL_WRITE,
                    FaultKind::PartialWrite,
                    FaultTrigger::AtIndex(3),
                ),
        );
        with_injector(&injector, || {
            let mut writer = SpillWriter::create(&path).unwrap();
            for i in 0..4u64 {
                writer.append("dl", &[&[i * 10]]).unwrap();
            }
            writer.finish().unwrap();
        });
        let mut values = Vec::new();
        let health = fold_spill_file(&path, |_, cols| values.push(cols[0][0])).unwrap();
        // Chunk 1 corrupted (quarantined), chunk 3 torn (tail); 0 and 2 read.
        assert_eq!(values, vec![0, 20]);
        assert_eq!(health.quarantined, 1);
        assert!(health.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_io_error_retries_once_then_surfaces() {
        let dir = temp_dir("ioerr");
        let once = FaultInjector::new(FaultPlan::seeded(3).rule(
            SITE_SPILL_WRITE,
            FaultKind::IoError,
            FaultTrigger::AtIndex(0),
        ));
        with_injector(&once, || {
            let path = spill_path(&dir, "retry");
            let mut writer = SpillWriter::create(&path).unwrap();
            // AtIndex clears on attempt 1, so the retry succeeds.
            writer.append("dl", &[&[1]]).unwrap();
            writer.finish().unwrap();
        });
        let always = FaultInjector::new(FaultPlan::seeded(3).rule(
            SITE_SPILL_WRITE,
            FaultKind::IoError,
            FaultTrigger::Probability(1.0),
        ));
        with_injector(&always, || {
            let path = spill_path(&dir, "fail");
            let mut writer = SpillWriter::create(&path).unwrap();
            assert!(writer.append("dl", &[&[1]]).is_err());
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().unwrap();
            assert!(rss > 0);
        }
    }
}

//! Application records.
//!
//! An [`App`] is the static description an appstore exposes on an app's
//! page: category, developer, pricing, creation day, binary size, and the
//! libraries embedded in its APK (which the revenue crate scans for ad
//! networks, standing in for the paper's Androguard analysis).

use crate::ids::{AppId, CategoryId, DeveloperId};
use crate::money::Cents;
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// The 20 most popular Android advertising networks circa 2012, as used by
/// the paper's ad-library scan (Grace et al., WISEC 2012 catalogue).
pub const AD_NETWORK_CATALOGUE: [&str; 20] = [
    "admob",
    "adwhirl",
    "millennialmedia",
    "inmobi",
    "mobclix",
    "flurry",
    "jumptap",
    "tapjoy",
    "greystripe",
    "mdotm",
    "adsense",
    "zestadz",
    "smaato",
    "airpush",
    "mobfox",
    "youmi",
    "wooboo",
    "adchina",
    "domob",
    "waps",
];

/// A library embedded in an app's APK.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdLibrary {
    /// Package-style library name, e.g. `"admob"`.
    pub name: String,
}

impl AdLibrary {
    /// Builds a library reference by name.
    pub fn new(name: impl Into<String>) -> AdLibrary {
        AdLibrary { name: name.into() }
    }

    /// True if the library belongs to the 20-network ad catalogue.
    pub fn is_known_ad_network(&self) -> bool {
        AD_NETWORK_CATALOGUE.contains(&self.name.as_str())
    }
}

/// Whether an app is distributed free of charge or sold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PricingTier {
    /// Free to download (revenue, if any, comes from ads / in-app billing).
    Free,
    /// Must be purchased before download.
    Paid,
}

/// Static description of one application in one marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct App {
    /// Dense app identifier within the marketplace.
    pub id: AppId,
    /// The single category (cluster) the app belongs to.
    pub category: CategoryId,
    /// The developer account that published the app.
    pub developer: DeveloperId,
    /// Free or paid.
    pub tier: PricingTier,
    /// Current price; `Cents::ZERO` for free apps.
    pub price: Cents,
    /// Day the app first appeared in the store (day 0 for the initial
    /// inventory, later for apps added during the campaign).
    pub created: Day,
    /// APK size in bytes (the paper reports a 3.5 MB average).
    pub apk_size: u64,
    /// Libraries embedded in the APK.
    pub libraries: Vec<AdLibrary>,
}

impl App {
    /// True if the app is sold for money.
    pub fn is_paid(&self) -> bool {
        self.tier == PricingTier::Paid
    }

    /// True if the APK embeds at least one known ad network, i.e. what the
    /// paper's Androguard scan reports for 67.7% of free apps.
    pub fn has_ads(&self) -> bool {
        self.libraries.iter().any(AdLibrary::is_known_ad_network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_app(libs: &[&str]) -> App {
        App {
            id: AppId(0),
            category: CategoryId(3),
            developer: DeveloperId(1),
            tier: PricingTier::Free,
            price: Cents::ZERO,
            created: Day::ZERO,
            apk_size: 3_500_000,
            libraries: libs.iter().map(|l| AdLibrary::new(*l)).collect(),
        }
    }

    #[test]
    fn catalogue_has_twenty_unique_networks() {
        let unique: std::collections::HashSet<&str> =
            AD_NETWORK_CATALOGUE.iter().copied().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn ad_detection_matches_catalogue() {
        assert!(sample_app(&["admob"]).has_ads());
        assert!(sample_app(&["support-v4", "flurry"]).has_ads());
        assert!(!sample_app(&["support-v4", "okhttp"]).has_ads());
        assert!(!sample_app(&[]).has_ads());
    }

    #[test]
    fn pricing_tier() {
        let mut app = sample_app(&[]);
        assert!(!app.is_paid());
        app.tier = PricingTier::Paid;
        app.price = Cents::from_dollars(3);
        assert!(app.is_paid());
    }
}

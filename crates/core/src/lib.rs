//! Domain model for the planet-apps appstore study.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for apps, users, developers and categories; the
//! records an appstore exposes about each app; download / comment / update
//! events; daily snapshots as collected by a crawl; and complete datasets
//! (one per monitored appstore) that the analysis crates consume.
//!
//! It also provides three small pieces of infrastructure that the
//! simulators are built on:
//!
//! * [`seed::Seed`] — hierarchical deterministic seeding, so that every
//!   experiment in the repository is bit-reproducible,
//! * [`bitset::DenseBitset`] — a compact per-user "already downloaded"
//!   set used to implement the *fetch-at-most-once* property at the scale
//!   of hundreds of thousands of users times tens of thousands of apps, and
//! * [`par::par_map_indexed`] — deterministic fork/join over seeded work
//!   items, the scheme every parallel experiment path uses to stay
//!   byte-identical across thread counts.
//!
//! Design follows the paper's data model (Section 2 of Petsas et al.,
//! IMC 2013): each app belongs to exactly one category, has one developer,
//! is free or paid, and accumulates downloads, comments and updates that a
//! daily crawl observes as cumulative counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod backoff;
pub mod bitset;
pub mod category;
pub mod dataset;
pub mod developer;
pub mod error;
pub mod event;
pub mod faults;
pub mod ids;
pub mod journal;
pub mod money;
pub mod par;
pub mod quality;
pub mod seed;
pub mod snapshot;
pub mod spill;
pub mod time;

pub use app::{AdLibrary, App, PricingTier, AD_NETWORK_CATALOGUE};
pub use backoff::{backoff_delay_ms, jittered, BackoffSchedule, RetryBudget};
pub use bitset::DenseBitset;
pub use category::{CategoryInfo, CategorySet};
pub use dataset::{Dataset, StoreMeta};
pub use developer::Developer;
pub use error::CoreError;
pub use event::{CommentEvent, DownloadEvent, UpdateEvent};
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRule, FaultTrigger};
pub use ids::{AppId, CategoryId, DeveloperId, StoreId, UserId};
pub use money::Cents;
pub use par::{effective_threads, par_map_indexed, par_map_indexed_lossy};
pub use quality::{
    assess, assess_span, repair_gaps, DatasetQuality, GapRepair, PartialSnapshot, RepairReport,
};
pub use seed::Seed;
pub use snapshot::{AppObservation, DailySnapshot};
pub use spill::{ShardPlan, SpillHealth, SpillReader, SpillWriter};
pub use time::Day;

//! Simulation time.
//!
//! The paper's crawls observe each appstore once per day, so a day is the
//! natural time unit for datasets and snapshots. [`Day`] counts days since
//! the start of a measurement campaign. Finer-grained timing (the crawler
//! simulation schedules requests in milliseconds) is kept internal to the
//! crawler crate; everything the analysis sees is day-indexed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A day index relative to the start of a measurement campaign (day 0).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Day(pub u32);

impl Day {
    /// The first day of a campaign.
    pub const ZERO: Day = Day(0);

    /// Returns the raw day index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next day.
    #[inline]
    pub fn next(self) -> Day {
        Day(self.0 + 1)
    }

    /// Iterates over `self..end` (half-open).
    pub fn until(self, end: Day) -> impl Iterator<Item = Day> {
        (self.0..end.0).map(Day)
    }

    /// Inclusive number of days from `self` through `end`.
    /// Returns 0 when `end < self`.
    pub fn span_through(self, end: Day) -> u32 {
        if end < self {
            0
        } else {
            end.0 - self.0 + 1
        }
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

impl Add<u32> for Day {
    type Output = Day;
    fn add(self, rhs: u32) -> Day {
        Day(self.0 + rhs)
    }
}

impl AddAssign<u32> for Day {
    fn add_assign(&mut self, rhs: u32) {
        self.0 += rhs;
    }
}

impl Sub<Day> for Day {
    type Output = u32;
    /// Number of whole days between two days.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Day) -> u32 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let d = Day(3);
        assert_eq!(d + 4, Day(7));
        assert_eq!(Day(7) - Day(3), 4);
        assert_eq!(d.next(), Day(4));
    }

    #[test]
    fn until_is_half_open() {
        let days: Vec<Day> = Day(2).until(Day(5)).collect();
        assert_eq!(days, vec![Day(2), Day(3), Day(4)]);
        assert_eq!(Day(5).until(Day(5)).count(), 0);
    }

    #[test]
    fn span_through_is_inclusive() {
        assert_eq!(Day(0).span_through(Day(0)), 1);
        assert_eq!(Day(3).span_through(Day(9)), 7);
        assert_eq!(Day(9).span_through(Day(3)), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Day(12).to_string(), "day 12");
    }
}

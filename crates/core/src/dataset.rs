//! Complete per-store datasets.
//!
//! A [`Dataset`] bundles everything the study knows about one monitored
//! appstore: its metadata, taxonomy, app and developer registries, the
//! daily snapshot time series produced by a crawl, and (where available,
//! as for Anzhi in the paper) the raw comment and update event streams.
//!
//! The accessors here implement the bookkeeping every analysis needs:
//! first/last snapshot, per-app download deltas over the campaign, daily
//! download rates, per-category totals, and validation of the crawl
//! invariants (snapshots ordered, counters monotonic, categories known).

use crate::app::App;
use crate::category::CategorySet;
use crate::developer::Developer;
use crate::error::CoreError;
use crate::event::{CommentEvent, UpdateEvent};
use crate::ids::{AppId, CategoryId, StoreId};
use crate::snapshot::DailySnapshot;
use serde::{Deserialize, Serialize};

/// Identity and descriptive metadata of a monitored store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreMeta {
    /// Store identifier.
    pub id: StoreId,
    /// Store name, e.g. `"anzhi"`.
    pub name: String,
    /// Whether the store sells paid apps (only SlideMe in the paper).
    pub has_paid_apps: bool,
}

/// Everything collected about one appstore over one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Store identity.
    pub store: StoreMeta,
    /// The store's category taxonomy.
    pub categories: CategorySet,
    /// Static app registry, indexed by `AppId`.
    pub apps: Vec<App>,
    /// Static developer registry, indexed by `DeveloperId`.
    pub developers: Vec<Developer>,
    /// Daily snapshots in strictly increasing day order.
    pub snapshots: Vec<DailySnapshot>,
    /// Rated comments, ordered by (user, day, seq) as collected.
    pub comments: Vec<CommentEvent>,
    /// App updates observed during the campaign.
    pub updates: Vec<UpdateEvent>,
}

impl Dataset {
    /// Validates the crawl invariants.
    ///
    /// * at least one snapshot;
    /// * snapshots strictly ordered by day;
    /// * per-app cumulative counters never decrease;
    /// * every observation's category is inside the taxonomy.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.snapshots.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        for pair in self.snapshots.windows(2) {
            if pair[1].day <= pair[0].day {
                return Err(CoreError::UnorderedSnapshots {
                    previous: pair[0].day.0,
                    next: pair[1].day.0,
                });
            }
            for obs in &pair[1].observations {
                if obs.category.index() >= self.categories.len() {
                    return Err(CoreError::UnknownCategory {
                        category: obs.category.0,
                    });
                }
                if let Some(earlier) = pair[0].downloads_of(obs.app) {
                    if obs.downloads < earlier {
                        return Err(CoreError::NonMonotonicCounter {
                            app: obs.app.0,
                            day: pair[1].day.0,
                        });
                    }
                }
            }
        }
        for obs in &self.snapshots[0].observations {
            if obs.category.index() >= self.categories.len() {
                return Err(CoreError::UnknownCategory {
                    category: obs.category.0,
                });
            }
        }
        Ok(())
    }

    /// The first snapshot of the campaign.
    ///
    /// # Panics
    /// Panics on an empty dataset (use [`Dataset::validate`] first).
    pub fn first(&self) -> &DailySnapshot {
        self.snapshots.first().expect("dataset has no snapshots")
    }

    /// The last snapshot of the campaign.
    ///
    /// # Panics
    /// Panics on an empty dataset (use [`Dataset::validate`] first).
    pub fn last(&self) -> &DailySnapshot {
        self.snapshots.last().expect("dataset has no snapshots")
    }

    /// Number of days covered (inclusive of both endpoints).
    pub fn campaign_days(&self) -> u32 {
        self.first().day.span_through(self.last().day)
    }

    /// Average number of apps added per day over the campaign
    /// (Table 1, "New apps per day").
    pub fn new_apps_per_day(&self) -> f64 {
        let days = self.campaign_days();
        if days <= 1 {
            return 0.0;
        }
        let added = self.last().app_count() - self.first().app_count();
        added as f64 / f64::from(days - 1)
    }

    /// Average daily downloads over the campaign (Table 1).
    pub fn daily_downloads(&self) -> f64 {
        let days = self.campaign_days();
        if days <= 1 {
            return 0.0;
        }
        let delta = self.last().total_downloads() - self.first().total_downloads();
        delta as f64 / f64::from(days - 1)
    }

    /// Cumulative download counters of the last snapshot, descending — the
    /// per-app popularity vector analyzed throughout the paper.
    pub fn final_downloads_ranked(&self) -> Vec<u64> {
        self.last().downloads_ranked()
    }

    /// Total downloads per category on a given snapshot (Fig. 5d).
    pub fn downloads_by_category(&self, snapshot: &DailySnapshot) -> Vec<u64> {
        let mut per_cat = vec![0u64; self.categories.len()];
        for obs in &snapshot.observations {
            per_cat[obs.category.index()] += obs.downloads;
        }
        per_cat
    }

    /// Number of apps per category on a given snapshot (used for the
    /// random-walk affinity baseline, Eq. 2/4).
    pub fn apps_by_category(&self, snapshot: &DailySnapshot) -> Vec<u64> {
        let mut per_cat = vec![0u64; self.categories.len()];
        for obs in &snapshot.observations {
            per_cat[obs.category.index()] += 1;
        }
        per_cat
    }

    /// Number of updates observed per app over the whole campaign,
    /// indexed by `AppId` (Fig. 4). Apps never updated count zero.
    pub fn updates_per_app(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.apps.len()];
        for update in &self.updates {
            counts[update.app.index()] += 1;
        }
        counts
    }

    /// The category of an app.
    ///
    /// # Panics
    /// Panics if the app id is not in the registry.
    pub fn category_of(&self, app: AppId) -> CategoryId {
        self.apps[app.index()].category
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::PricingTier;
    use crate::ids::DeveloperId;
    use crate::money::Cents;
    use crate::snapshot::AppObservation;
    use crate::time::Day;

    fn obs(app: u32, cat: u32, downloads: u64) -> AppObservation {
        AppObservation {
            app: AppId(app),
            category: CategoryId(cat),
            developer: DeveloperId(0),
            downloads,
            comments: 0,
            version: 1,
            price: Cents::ZERO,
        }
    }

    fn app(id: u32, cat: u32) -> App {
        App {
            id: AppId(id),
            category: CategoryId(cat),
            developer: DeveloperId(0),
            tier: PricingTier::Free,
            price: Cents::ZERO,
            created: Day::ZERO,
            apk_size: 1,
            libraries: vec![],
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            store: StoreMeta {
                id: StoreId(0),
                name: "test".into(),
                has_paid_apps: false,
            },
            categories: CategorySet::anonymous(2),
            apps: vec![app(0, 0), app(1, 1), app(2, 1)],
            developers: vec![Developer::numbered(DeveloperId(0))],
            snapshots: vec![
                DailySnapshot {
                    day: Day(0),
                    observations: vec![obs(0, 0, 10), obs(1, 1, 5)],
                },
                DailySnapshot {
                    day: Day(2),
                    observations: vec![obs(0, 0, 14), obs(1, 1, 9), obs(2, 1, 3)],
                },
            ],
            comments: vec![],
            updates: vec![
                UpdateEvent {
                    app: AppId(0),
                    day: Day(1),
                    version: 2,
                },
                UpdateEvent {
                    app: AppId(0),
                    day: Day(2),
                    version: 3,
                },
            ],
        }
    }

    #[test]
    fn valid_dataset_passes() {
        assert_eq!(dataset().validate(), Ok(()));
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut d = dataset();
        d.snapshots.clear();
        assert_eq!(d.validate(), Err(CoreError::EmptyDataset));
    }

    #[test]
    fn unordered_snapshots_rejected() {
        let mut d = dataset();
        d.snapshots[1].day = Day(0);
        assert!(matches!(
            d.validate(),
            Err(CoreError::UnorderedSnapshots { .. })
        ));
    }

    #[test]
    fn regressing_counter_rejected() {
        let mut d = dataset();
        d.snapshots[1].observations[0].downloads = 1;
        assert_eq!(
            d.validate(),
            Err(CoreError::NonMonotonicCounter { app: 0, day: 2 })
        );
    }

    #[test]
    fn unknown_category_rejected() {
        let mut d = dataset();
        d.snapshots[0].observations[0].category = CategoryId(9);
        assert_eq!(
            d.validate(),
            Err(CoreError::UnknownCategory { category: 9 })
        );
    }

    #[test]
    fn campaign_statistics() {
        let d = dataset();
        assert_eq!(d.campaign_days(), 3);
        // 1 app added over 2 elapsed days
        assert!((d.new_apps_per_day() - 0.5).abs() < 1e-12);
        // downloads went 15 -> 26 over 2 elapsed days
        assert!((d.daily_downloads() - 5.5).abs() < 1e-12);
        assert_eq!(d.final_downloads_ranked(), vec![14, 9, 3]);
    }

    #[test]
    fn per_category_aggregates() {
        let d = dataset();
        let last = d.last().clone();
        assert_eq!(d.downloads_by_category(&last), vec![14, 12]);
        assert_eq!(d.apps_by_category(&last), vec![1, 2]);
    }

    #[test]
    fn updates_per_app_counts() {
        let d = dataset();
        assert_eq!(d.updates_per_app(), vec![2, 0, 0]);
    }

    #[test]
    fn category_lookup() {
        let d = dataset();
        assert_eq!(d.category_of(AppId(2)), CategoryId(1));
    }
}

//! Strongly-typed identifiers.
//!
//! All entities are identified by dense `u32` indexes: every generator in
//! this workspace allocates ids contiguously from zero, which lets analysis
//! code index `Vec`s by id instead of hashing. The newtypes exist so that an
//! `AppId` can never be confused with a `UserId` at a call site.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of an application within one marketplace.
    AppId,
    "app-"
);
define_id!(
    /// Identifier of a marketplace user (downloader / commenter).
    UserId,
    "user-"
);
define_id!(
    /// Identifier of an app developer account.
    DeveloperId,
    "dev-"
);
define_id!(
    /// Identifier of an app category (cluster) within one marketplace.
    CategoryId,
    "cat-"
);
define_id!(
    /// Identifier of a monitored appstore.
    StoreId,
    "store-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(AppId(7).to_string(), "app-7");
        assert_eq!(UserId(0).to_string(), "user-0");
        assert_eq!(CategoryId(33).to_string(), "cat-33");
        assert_eq!(StoreId(2).to_string(), "store-2");
        assert_eq!(DeveloperId(11).to_string(), "dev-11");
    }

    #[test]
    fn index_round_trip() {
        let id = AppId::from_index(123);
        assert_eq!(id.index(), 123);
        assert_eq!(id, AppId(123));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(AppId(1) < AppId(2));
        assert!(UserId(10) > UserId(9));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_panics_on_overflow() {
        let _ = AppId::from_index(usize::MAX);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&AppId(42)).unwrap();
        assert_eq!(json, "42");
        let back: AppId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AppId(42));
    }
}

//! Daily crawl snapshots.
//!
//! A crawl visits each app page once per day and records the *cumulative*
//! counters the store displays. [`AppObservation`] is one app on one day;
//! [`DailySnapshot`] is the full store on one day. The analysis crates
//! derive everything (download distributions, daily deltas, update counts)
//! from a time series of snapshots, exactly as the paper derives its
//! results from its crawl database.

use crate::ids::{AppId, CategoryId, DeveloperId};
use crate::money::Cents;
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// One app's page as observed on one day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppObservation {
    /// Which app.
    pub app: AppId,
    /// Category shown on the page.
    pub category: CategoryId,
    /// Developer shown on the page.
    pub developer: DeveloperId,
    /// Cumulative downloads displayed by the store.
    pub downloads: u64,
    /// Cumulative number of rated comments.
    pub comments: u64,
    /// Version number currently offered.
    pub version: u32,
    /// Price on this day (stores can change it; free apps are zero).
    pub price: Cents,
}

/// All app observations for one store on one day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySnapshot {
    /// Which day the snapshot describes.
    pub day: Day,
    /// One observation per app indexed in the store that day, in `AppId`
    /// order. Apps added later simply do not appear in earlier snapshots.
    pub observations: Vec<AppObservation>,
}

impl DailySnapshot {
    /// Number of apps visible on this day.
    pub fn app_count(&self) -> usize {
        self.observations.len()
    }

    /// Sum of cumulative downloads over all apps.
    pub fn total_downloads(&self) -> u64 {
        self.observations.iter().map(|o| o.downloads).sum()
    }

    /// Cumulative download counter of one app, if present.
    pub fn downloads_of(&self, app: AppId) -> Option<u64> {
        self.observations
            .binary_search_by_key(&app, |o| o.app)
            .ok()
            .map(|i| self.observations[i].downloads)
    }

    /// Download counters in descending order (the popularity curve the
    /// paper plots as Figures 3, 8 and 11).
    pub fn downloads_ranked(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.observations.iter().map(|o| o.downloads).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Checks the `AppId`-ordering invariant.
    pub fn is_sorted(&self) -> bool {
        self.observations.windows(2).all(|w| w[0].app < w[1].app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(app: u32, downloads: u64) -> AppObservation {
        AppObservation {
            app: AppId(app),
            category: CategoryId(0),
            developer: DeveloperId(0),
            downloads,
            comments: 0,
            version: 1,
            price: Cents::ZERO,
        }
    }

    fn snapshot() -> DailySnapshot {
        DailySnapshot {
            day: Day(5),
            observations: vec![obs(0, 10), obs(1, 300), obs(2, 25)],
        }
    }

    #[test]
    fn totals_and_lookup() {
        let s = snapshot();
        assert_eq!(s.app_count(), 3);
        assert_eq!(s.total_downloads(), 335);
        assert_eq!(s.downloads_of(AppId(1)), Some(300));
        assert_eq!(s.downloads_of(AppId(9)), None);
    }

    #[test]
    fn ranked_is_descending() {
        assert_eq!(snapshot().downloads_ranked(), vec![300, 25, 10]);
    }

    #[test]
    fn sorted_invariant() {
        assert!(snapshot().is_sorted());
        let bad = DailySnapshot {
            day: Day(0),
            observations: vec![obs(2, 1), obs(1, 1)],
        };
        assert!(!bad.is_sorted());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ids::{CategoryId, DeveloperId};
    use crate::money::Cents;
    use crate::time::Day;

    fn obs(app: u32, downloads: u64) -> AppObservation {
        AppObservation {
            app: AppId(app),
            category: CategoryId(0),
            developer: DeveloperId(0),
            downloads,
            comments: 0,
            version: 1,
            price: Cents::ZERO,
        }
    }

    #[test]
    fn ranked_handles_ties_and_zeroes() {
        let s = DailySnapshot {
            day: Day(0),
            observations: vec![obs(0, 5), obs(1, 0), obs(2, 5), obs(3, 1)],
        };
        assert_eq!(s.downloads_ranked(), vec![5, 5, 1, 0]);
    }

    #[test]
    fn empty_snapshot() {
        let s = DailySnapshot {
            day: Day(0),
            observations: vec![],
        };
        assert_eq!(s.app_count(), 0);
        assert_eq!(s.total_downloads(), 0);
        assert!(s.downloads_ranked().is_empty());
        assert!(s.is_sorted());
        assert_eq!(s.downloads_of(AppId(0)), None);
    }
}

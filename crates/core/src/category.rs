//! Category taxonomies.
//!
//! Every app belongs to exactly one category; categories are the clusters
//! of the APP-CLUSTERING model. Two taxonomies matter for the paper:
//!
//! * the Anzhi store groups its ~60k apps into **34 categories** (used for
//!   the affinity study, Section 4), and
//! * SlideMe uses **20 named categories** (used for the pricing study,
//!   Section 6: music, fun/games, utilities, …, developer).
//!
//! [`CategorySet`] carries the names plus per-category metadata the
//! generators need (relative app share, relative download attractiveness,
//! price level for paid apps).

use crate::ids::CategoryId;
use serde::{Deserialize, Serialize};

/// The names of SlideMe's 20 categories, ordered as in the paper's
/// Figure 15 revenue ranking (music first).
pub const SLIDEME_CATEGORY_NAMES: [&str; 20] = [
    "music",
    "fun/games",
    "utilities",
    "productivity",
    "entertainment",
    "religion",
    "travel",
    "educational",
    "social",
    "communications",
    "e-books",
    "lifestyle",
    "wallpapers",
    "health/fitness",
    "other",
    "collaboration",
    "location/maps",
    "home/hobby",
    "enterprise",
    "developer",
];

/// Static description of one category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryInfo {
    /// Category identifier (dense, equal to its position in the set).
    pub id: CategoryId,
    /// Human-readable name.
    pub name: String,
}

/// An ordered collection of categories for one marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorySet {
    categories: Vec<CategoryInfo>,
}

impl CategorySet {
    /// Builds a taxonomy from explicit names.
    pub fn from_names<I, S>(names: I) -> CategorySet
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let categories = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| CategoryInfo {
                id: CategoryId::from_index(i),
                name: name.into(),
            })
            .collect();
        CategorySet { categories }
    }

    /// Builds an anonymous taxonomy of `n` categories named
    /// `category-0 .. category-{n-1}` (used for the 34-category Chinese
    /// stores, whose category names the paper does not enumerate).
    pub fn anonymous(n: usize) -> CategorySet {
        CategorySet::from_names((0..n).map(|i| format!("category-{i}")))
    }

    /// The SlideMe taxonomy (20 named categories).
    pub fn slideme() -> CategorySet {
        CategorySet::from_names(SLIDEME_CATEGORY_NAMES)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// True if the taxonomy is empty.
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Looks a category up by id.
    ///
    /// # Panics
    /// Panics if the id is not part of this set.
    pub fn get(&self, id: CategoryId) -> &CategoryInfo {
        &self.categories[id.index()]
    }

    /// Looks a category up by name.
    pub fn by_name(&self, name: &str) -> Option<&CategoryInfo> {
        self.categories.iter().find(|c| c.name == name)
    }

    /// Iterates categories in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CategoryInfo> {
        self.categories.iter()
    }

    /// All category ids in order.
    pub fn ids(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.categories.iter().map(|c| c.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slideme_has_twenty_named_categories() {
        let set = CategorySet::slideme();
        assert_eq!(set.len(), 20);
        assert_eq!(set.get(CategoryId(0)).name, "music");
        assert_eq!(set.get(CategoryId(19)).name, "developer");
        assert!(set.by_name("fun/games").is_some());
        assert!(set.by_name("nonexistent").is_none());
    }

    #[test]
    fn anonymous_ids_are_dense() {
        let set = CategorySet::anonymous(34);
        assert_eq!(set.len(), 34);
        for (i, cat) in set.iter().enumerate() {
            assert_eq!(cat.id.index(), i);
        }
        assert_eq!(set.get(CategoryId(33)).name, "category-33");
    }

    #[test]
    fn by_name_finds_id() {
        let set = CategorySet::slideme();
        let ebooks = set.by_name("e-books").unwrap();
        assert_eq!(set.get(ebooks.id).name, "e-books");
    }

    #[test]
    fn empty_set() {
        let set = CategorySet::anonymous(0);
        assert!(set.is_empty());
        assert_eq!(set.ids().count(), 0);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn category_set_round_trips() {
        let set = CategorySet::slideme();
        let json = serde_json::to_string(&set).unwrap();
        let back: CategorySet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.get(CategoryId(0)).name, "music");
    }
}

//! Hierarchical deterministic seeding.
//!
//! Every stochastic component in the workspace (marketplace generator,
//! model simulators, crawler fault injection, bootstrap resampling) draws
//! randomness from a [`Seed`]. Seeds form a tree: `seed.child("users")`
//! derives a statistically independent stream for the user subsystem, and
//! `seed.child_indexed("user", i)` one per entity. The derivation is a
//! small dedicated mixer (an FNV-1a/SplitMix64 hybrid), so experiment
//! outputs are stable across platforms and crate versions — unlike
//! `rand::rngs::StdRng`, whose algorithm is documented as unstable, the
//! actual generator is a pinned `ChaCha12Rng`.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A 64-bit node in a deterministic seed tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seed(pub u64);

/// SplitMix64 finalizer — a full-avalanche 64-bit mixer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Seed {
    /// Builds the root of a seed tree.
    pub fn new(value: u64) -> Seed {
        Seed(value)
    }

    /// Derives a child seed for the named subsystem.
    ///
    /// Two distinct labels always produce distinct streams; the same label
    /// always produces the same stream.
    pub fn child(self, label: &str) -> Seed {
        let mut acc = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Seed(splitmix64(acc))
    }

    /// Derives the `index`-th child seed under `label` (one per entity).
    pub fn child_indexed(self, label: &str, index: u64) -> Seed {
        Seed(splitmix64(self.child(label).0 ^ splitmix64(index)))
    }

    /// Instantiates the pinned random number generator for this node.
    pub fn rng(self) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn children_are_deterministic() {
        let root = Seed::new(42);
        assert_eq!(root.child("users"), root.child("users"));
        assert_eq!(root.child_indexed("user", 7), root.child_indexed("user", 7));
    }

    #[test]
    fn distinct_labels_give_distinct_seeds() {
        let root = Seed::new(42);
        assert_ne!(root.child("users"), root.child("apps"));
        assert_ne!(root.child("a"), root.child("aa"));
        assert_ne!(root.child_indexed("user", 1), root.child_indexed("user", 2));
        // label/index pairs must not collide with plain labels
        assert_ne!(root.child_indexed("user", 0), root.child("user"));
    }

    #[test]
    fn distinct_roots_give_distinct_streams() {
        let mut a = Seed::new(1).rng();
        let mut b = Seed::new(2).rng();
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn rng_stream_is_reproducible() {
        let mut a = Seed::new(99).child("x").rng();
        let mut b = Seed::new(99).child("x").rng();
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_avalanches() {
        // Flipping one input bit must change roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }
}

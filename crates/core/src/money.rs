//! Money as integer cents.
//!
//! All prices and incomes are carried as whole cents to keep aggregation
//! exact; conversion to floating dollars happens only at presentation and
//! statistics boundaries (e.g. correlation of price with downloads).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// An amount of money in US cents.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cents(pub u64);

impl Cents {
    /// Zero dollars.
    pub const ZERO: Cents = Cents(0);

    /// Builds an amount from whole dollars.
    pub fn from_dollars(dollars: u64) -> Cents {
        Cents(dollars * 100)
    }

    /// The amount as (possibly fractional) dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// True if the amount is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by a count (e.g. price × downloads).
    pub fn saturating_mul(self, count: u64) -> Cents {
        Cents(self.0.saturating_mul(count))
    }
}

impl fmt::Display for Cents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}.{:02}", self.0 / 100, self.0 % 100)
    }
}

impl Add for Cents {
    type Output = Cents;
    fn add(self, rhs: Cents) -> Cents {
        Cents(self.0 + rhs.0)
    }
}

impl AddAssign for Cents {
    fn add_assign(&mut self, rhs: Cents) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cents {
    type Output = Cents;
    fn mul(self, rhs: u64) -> Cents {
        Cents(self.0 * rhs)
    }
}

impl Sum for Cents {
    fn sum<I: Iterator<Item = Cents>>(iter: I) -> Cents {
        iter.fold(Cents::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_cents() {
        assert_eq!(Cents(0).to_string(), "$0.00");
        assert_eq!(Cents(5).to_string(), "$0.05");
        assert_eq!(Cents(123).to_string(), "$1.23");
        assert_eq!(Cents(99_999).to_string(), "$999.99");
    }

    #[test]
    fn dollars_round_trip() {
        assert_eq!(Cents::from_dollars(4).as_dollars(), 4.0);
        assert!((Cents(399).as_dollars() - 3.99).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cents(100) + Cents(23), Cents(123));
        assert_eq!(Cents(250) * 4, Cents(1000));
        let total: Cents = [Cents(1), Cents(2), Cents(3)].into_iter().sum();
        assert_eq!(total, Cents(6));
    }

    #[test]
    fn saturating_mul_does_not_overflow() {
        assert_eq!(Cents(u64::MAX).saturating_mul(2), Cents(u64::MAX));
    }
}

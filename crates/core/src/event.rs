//! Behavioural events.
//!
//! The generators emit three event kinds, mirroring what the paper's crawl
//! can observe indirectly:
//!
//! * [`DownloadEvent`] — a user downloads (or purchases) an app; the crawl
//!   only sees these aggregated into per-app counters, but the simulators
//!   and the cache experiments consume the raw stream.
//! * [`CommentEvent`] — a user posts a rated comment; the affinity study
//!   (Section 4) works on per-user comment streams ordered by time.
//! * [`UpdateEvent`] — a developer publishes a new APK version; used for
//!   the fetch-at-most-once validation (Fig. 4).

use crate::ids::{AppId, UserId};
use crate::time::Day;
use serde::{Deserialize, Serialize};

/// One app download by one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownloadEvent {
    /// Downloading user.
    pub user: UserId,
    /// Downloaded app.
    pub app: AppId,
    /// Day the download happened.
    pub day: Day,
}

/// One rated user comment on an app.
///
/// `seq` orders comments of the same user within a day (the Anzhi crawl
/// provides precise timestamps; a (day, seq) pair is our equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentEvent {
    /// Commenting user.
    pub user: UserId,
    /// Commented app.
    pub app: AppId,
    /// Day the comment was posted.
    pub day: Day,
    /// Within-day sequence number of this comment in the user's stream.
    pub seq: u32,
    /// Star rating attached to the comment (1–5). Only rated comments are
    /// treated as download evidence, as in the paper.
    pub rating: u8,
}

/// A new version of an app published by its developer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Updated app.
    pub app: AppId,
    /// Day the update was published.
    pub day: Day,
    /// New version number (monotonically increasing per app, starting at 1
    /// for the initial release).
    pub version: u32,
}

impl CommentEvent {
    /// Total order of a user's comments: by day, then by in-day sequence.
    pub fn chrono_key(&self) -> (Day, u32) {
        (self.day, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_chrono_key_orders_within_day() {
        let a = CommentEvent {
            user: UserId(1),
            app: AppId(1),
            day: Day(3),
            seq: 0,
            rating: 5,
        };
        let b = CommentEvent {
            app: AppId(2),
            seq: 1,
            ..a
        };
        let c = CommentEvent {
            app: AppId(3),
            day: Day(4),
            seq: 0,
            ..a
        };
        assert!(a.chrono_key() < b.chrono_key());
        assert!(b.chrono_key() < c.chrono_key());
    }

    #[test]
    fn events_serialize() {
        let e = DownloadEvent {
            user: UserId(9),
            app: AppId(4),
            day: Day(2),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: DownloadEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}

//! Error type shared by the workspace.

use std::fmt;

/// Errors produced by dataset construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A dataset was built with no snapshots.
    EmptyDataset,
    /// Snapshots were not in strictly increasing day order.
    UnorderedSnapshots {
        /// Day of the earlier snapshot in the offending pair.
        previous: u32,
        /// Day of the later snapshot in the offending pair.
        next: u32,
    },
    /// A cumulative counter decreased between consecutive snapshots, which
    /// a correct crawl can never observe.
    NonMonotonicCounter {
        /// App whose counter regressed.
        app: u32,
        /// Day on which the regression was observed.
        day: u32,
    },
    /// An observation referenced a category outside the store's taxonomy.
    UnknownCategory {
        /// The out-of-range category index.
        category: u32,
    },
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDataset => write!(f, "dataset contains no snapshots"),
            CoreError::UnorderedSnapshots { previous, next } => write!(
                f,
                "snapshots out of order: day {next} follows day {previous}"
            ),
            CoreError::NonMonotonicCounter { app, day } => write!(
                f,
                "cumulative download counter of app-{app} decreased on day {day}"
            ),
            CoreError::UnknownCategory { category } => {
                write!(f, "category index {category} outside the store taxonomy")
            }
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> CoreError {
        CoreError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::EmptyDataset.to_string(),
            "dataset contains no snapshots"
        );
        assert!(CoreError::NonMonotonicCounter { app: 3, day: 7 }
            .to_string()
            .contains("app-3"));
        assert!(CoreError::invalid("p", "must lie in [0, 1]")
            .to_string()
            .contains("must lie in [0, 1]"));
    }
}

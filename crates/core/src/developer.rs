//! Developer accounts.

use crate::ids::DeveloperId;
use serde::{Deserialize, Serialize};

/// A developer account that publishes apps in a marketplace.
///
/// The paper observes (Fig. 16) that most developers publish very few apps
/// focused on one or two categories, with a tail of prolific "app factory"
/// accounts (one with 1,402 apps); the generator reproduces that shape, and
/// this record is what the revenue analysis aggregates over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Developer {
    /// Dense developer identifier within the marketplace.
    pub id: DeveloperId,
    /// Display name.
    pub name: String,
}

impl Developer {
    /// Builds a developer with a generated display name.
    pub fn numbered(id: DeveloperId) -> Developer {
        Developer {
            name: format!("developer-{}", id.0),
            id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbered_name() {
        let dev = Developer::numbered(DeveloperId(17));
        assert_eq!(dev.name, "developer-17");
        assert_eq!(dev.id, DeveloperId(17));
    }
}

//! Deterministic retry backoff and retry budgets.
//!
//! Every retrying client in the workspace — the crawler fetching through
//! flaky PlanetLab proxies, the serve-layer replay client riding out
//! load sheds — uses the same schedule: exponential backoff on the
//! attempt number with ±25% multiplicative jitter, capped so a request
//! that keeps failing never waits longer than `base_ms << 8` (~25 s at
//! the crawler's 100 ms base). Jitter draws come from the caller's
//! seeded rng (one `f64` per delay), so a fixed seed replays the exact
//! same schedule.
//!
//! [`RetryBudget`] bounds the *aggregate* retry volume the way finagle's
//! retry budgets do: retries spend from a token bucket that only refills
//! as fresh requests arrive, so a struggling server sees retry traffic
//! proportional to real demand instead of an amplification storm.

use crate::seed::Seed;
use rand::Rng;

/// Exponent clamp for [`backoff_delay_ms`]: delays stop growing at
/// `base_ms << BACKOFF_MAX_SHIFT`.
pub const BACKOFF_MAX_SHIFT: u32 = 8;

/// Jitter floor: a jittered delay is at least 75% of the nominal delay.
pub const JITTER_MIN: f64 = 0.75;

/// Jitter span: the multiplier is uniform in `[0.75, 1.25)`.
pub const JITTER_SPAN: f64 = 0.5;

/// Nominal backoff delay (before jitter) ahead of retry `attempt`
/// (1-based): exponential in the attempt number, with the exponent
/// clamped so the delay never exceeds `base_ms << 8` no matter how long
/// a request keeps failing.
pub fn backoff_delay_ms(base_ms: u64, attempt: u32) -> u64 {
    base_ms.saturating_mul(1 << attempt.min(BACKOFF_MAX_SHIFT))
}

/// Applies ±25% multiplicative jitter to a nominal delay, consuming
/// exactly one `f64` draw from `rng`. Deterministic for a fixed rng
/// state; the result is always within `[0.75 × delay, 1.25 × delay)`.
pub fn jittered<R: Rng>(delay_ms: u64, rng: &mut R) -> u64 {
    let jitter = JITTER_MIN + JITTER_SPAN * rng.gen::<f64>();
    ((delay_ms as f64) * jitter) as u64
}

/// A self-seeded backoff schedule: delay for attempt `a` is
/// `jittered(backoff_delay_ms(base_ms, a))` with the jitter draw derived
/// from `seed.child_indexed("attempt", a)`, so any attempt's delay can
/// be computed independently (and repeatably) without threading an rng
/// through the retry loop.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    base_ms: u64,
    seed: Seed,
}

impl BackoffSchedule {
    /// Creates a schedule with the given base delay.
    pub fn new(base_ms: u64, seed: Seed) -> BackoffSchedule {
        BackoffSchedule { base_ms, seed }
    }

    /// Jittered delay before retry `attempt` (1-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let mut rng = self.seed.child_indexed("attempt", u64::from(attempt)).rng();
        jittered(backoff_delay_ms(self.base_ms, attempt), &mut rng)
    }

    /// Largest delay this schedule can produce (the cap, jittered high).
    pub fn max_delay_ms(&self) -> u64 {
        let cap = backoff_delay_ms(self.base_ms, BACKOFF_MAX_SHIFT);
        ((cap as f64) * (JITTER_MIN + JITTER_SPAN)) as u64
    }
}

/// Millitokens granted to the budget per fresh (non-retry) request,
/// scaled by the configured ratio. One retry costs 1000 millitokens.
const MILLITOKENS_PER_RETRY: u64 = 1_000;

/// A deterministic retry budget: retries may only spend tokens earned
/// by fresh requests, so retry volume stays a bounded fraction of real
/// traffic. Integer millitoken arithmetic keeps it exactly reproducible.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    /// Millitokens currently available.
    balance: u64,
    /// Millitokens earned per fresh request (`ratio × 1000`).
    earn_per_request: u64,
    /// Balance cap, in millitokens.
    capacity: u64,
}

impl RetryBudget {
    /// Creates a budget that allows roughly `ratio` retries per fresh
    /// request, with headroom for `burst` retries before any traffic is
    /// observed (the initial balance and cap).
    pub fn new(ratio: f64, burst: u64) -> RetryBudget {
        let capacity = burst.saturating_mul(MILLITOKENS_PER_RETRY);
        RetryBudget {
            balance: capacity,
            earn_per_request: (ratio.clamp(0.0, 1000.0) * MILLITOKENS_PER_RETRY as f64) as u64,
            capacity,
        }
    }

    /// Records a fresh request: the budget earns its per-request tokens.
    pub fn deposit(&mut self) {
        self.balance = self
            .balance
            .saturating_add(self.earn_per_request)
            .min(self.capacity);
    }

    /// Attempts to spend one retry's worth of tokens. Returns `false`
    /// (and leaves the balance unchanged) when the budget is exhausted —
    /// the caller should surface the failure instead of retrying.
    pub fn try_spend(&mut self) -> bool {
        if self.balance >= MILLITOKENS_PER_RETRY {
            self.balance -= MILLITOKENS_PER_RETRY;
            true
        } else {
            false
        }
    }

    /// Whole retries the budget can currently afford.
    pub fn available(&self) -> u64 {
        self.balance / MILLITOKENS_PER_RETRY
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_delays_double_then_cap() {
        assert_eq!(backoff_delay_ms(100, 1), 200);
        assert_eq!(backoff_delay_ms(100, 2), 400);
        assert_eq!(backoff_delay_ms(100, 8), 25_600);
        assert_eq!(backoff_delay_ms(100, 9), 25_600, "clamped at shift 8");
        assert_eq!(backoff_delay_ms(100, 200), 25_600);
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_attempt() {
        let a = BackoffSchedule::new(100, Seed::new(9));
        let b = BackoffSchedule::new(100, Seed::new(9));
        for attempt in 1..12 {
            assert_eq!(a.delay_ms(attempt), b.delay_ms(attempt));
        }
        let c = BackoffSchedule::new(100, Seed::new(10));
        assert!((1..12).any(|n| a.delay_ms(n) != c.delay_ms(n)));
    }

    #[test]
    fn budget_earns_only_with_fresh_traffic() {
        let mut budget = RetryBudget::new(0.2, 2);
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "burst spent, nothing earned yet");
        // Five fresh requests at ratio 0.2 earn exactly one retry.
        for _ in 0..5 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 1);
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
    }

    #[test]
    fn budget_balance_is_capped() {
        let mut budget = RetryBudget::new(1.0, 3);
        for _ in 0..100 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 3, "cap holds at the burst size");
    }

    proptest! {
        /// Jittered delays are monotone in the attempt number below the
        /// cap (a ×2 nominal step dominates the worst ±25% jitter swing)
        /// and never exceed the jittered cap.
        #[test]
        fn delays_are_monotone_bounded(
            seed in 0u64..1_000,
            base_ms in 1u64..2_000,
        ) {
            let schedule = BackoffSchedule::new(base_ms, Seed::new(seed));
            let cap = schedule.max_delay_ms();
            let mut prev = 0u64;
            for attempt in 1..=BACKOFF_MAX_SHIFT {
                let delay = schedule.delay_ms(attempt);
                // ×2 nominal growth beats jitter: 2×0.75 > 1×1.25.
                prop_assert!(
                    delay >= prev,
                    "attempt {attempt}: {delay} < previous {prev}"
                );
                prop_assert!(delay <= cap, "attempt {attempt}: {delay} > cap {cap}");
                // Keep the floor for the next attempt conservative: the
                // next nominal is exactly double, so its jittered floor
                // is 1.5× this attempt's nominal.
                prev = (backoff_delay_ms(base_ms, attempt) as f64 * JITTER_MIN) as u64;
            }
            // Past the clamp the nominal stops growing but stays bounded.
            for attempt in BACKOFF_MAX_SHIFT..BACKOFF_MAX_SHIFT + 8 {
                prop_assert!(schedule.delay_ms(attempt) <= cap);
            }
        }

        /// Total retries granted never exceed the burst capacity plus
        /// the earned fraction of fresh traffic.
        #[test]
        fn budget_caps_aggregate_retries(
            ratio in 0.0f64..1.0,
            burst in 0u64..10,
            requests in 0usize..500,
        ) {
            let mut budget = RetryBudget::new(ratio, burst);
            let mut granted = 0u64;
            for _ in 0..requests {
                budget.deposit();
                while budget.try_spend() {
                    granted += 1;
                }
            }
            let earned = (ratio * requests as f64).ceil() as u64;
            prop_assert!(
                granted <= burst + earned,
                "granted {granted} > burst {burst} + earned {earned}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// `jittered` stays within the documented ±25% envelope.
        #[test]
        fn jitter_envelope(seed in 0u64..10_000, delay in 0u64..1_000_000) {
            let mut rng = Seed::new(seed).rng();
            let j = jittered(delay, &mut rng);
            prop_assert!(j >= (delay as f64 * JITTER_MIN) as u64);
            prop_assert!(j <= (delay as f64 * (JITTER_MIN + JITTER_SPAN)) as u64);
        }
    }
}

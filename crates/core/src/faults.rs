//! Seeded, deterministic fault injection.
//!
//! Robustness claims are only testable if failure is reproducible. This
//! module provides a [`FaultInjector`] that instrumented code consults at
//! named *sites* ("does a fault fire here?"); which faults fire is a pure
//! function of a [`FaultPlan`] — a seed plus a list of rules — so every
//! chaos run is replayable bit-for-bit and a fault schedule can be
//! committed next to the test that relies on it.
//!
//! A site is identified by a static name (for example
//! [`SITE_PAR_TASK`]) plus the work-item `index` at that site and an
//! `attempt` number (0 for the first try, 1 for a retry). Rules trigger
//! either at one exact index ([`FaultTrigger::AtIndex`], first attempt
//! only, so retry-once semantics clear it) or with a probability drawn
//! from an RNG derived from `(plan seed, site, index, attempt)` — never
//! from global state — which keeps outcomes identical across thread
//! counts and runs.
//!
//! The injector is installed thread-locally with [`with_injector`], the
//! same scoping scheme `appstore_obs` uses for its registry; code under
//! test calls the free [`roll`], which is a no-op returning `None` when
//! no injector is installed. Fired faults are logged as [`FaultEvent`]s
//! retrievable via [`FaultInjector::events`] for assertions and audit
//! artifacts.

use crate::seed::Seed;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Injection site: each task attempt inside `par_map_indexed`.
pub const SITE_PAR_TASK: &str = "core.par.task";

/// What kind of failure a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The operation fails with an I/O-style error.
    IoError,
    /// Only a prefix of the write reaches the medium (torn write).
    PartialWrite,
    /// The operation takes `virtual_ms` of simulated time.
    Delay {
        /// Simulated latency in virtual milliseconds.
        virtual_ms: u64,
    },
    /// The worker executing the task panics.
    WorkerPanic,
    /// The written bytes are silently corrupted.
    Corrupt,
    /// The replica behind this site crashes and stays down until an
    /// explicit rejoin (serving tier only).
    ReplicaCrash,
    /// The replica behind this site is unreachable for `virtual_ms` of
    /// simulated time, then heals on its own (serving tier only).
    ReplicaPartition {
        /// How long the partition lasts in virtual milliseconds.
        virtual_ms: u64,
    },
    /// The replica behind this site answers, but `virtual_ms` late —
    /// the hedging trigger (serving tier only).
    ReplicaSlow {
        /// Extra latency in virtual milliseconds.
        virtual_ms: u64,
    },
    /// The replica behind this site silently diverges from its peers
    /// (a `Corrupt`-style ranking drift), repaired only by an
    /// anti-entropy reconciliation pass (serving tier only).
    ReplicaDrift,
}

impl FaultKind {
    /// Short stable label, used in logs and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::IoError => "io-error",
            FaultKind::PartialWrite => "partial-write",
            FaultKind::Delay { .. } => "delay",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::Corrupt => "corrupt",
            FaultKind::ReplicaCrash => "replica-crash",
            FaultKind::ReplicaPartition { .. } => "replica-partition",
            FaultKind::ReplicaSlow { .. } => "replica-slow",
            FaultKind::ReplicaDrift => "replica-drift",
        }
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Fires at exactly this work-item index, first attempt only — a
    /// retry of the same index succeeds, which is what lets
    /// retry-once-then-degrade semantics clear a scheduled fault.
    AtIndex(u64),
    /// Fires with this probability, rolled deterministically per
    /// `(site, index, attempt)` from the plan seed.
    Probability(f64),
}

/// One injection rule: a kind of failure at a site, with a trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Site name the rule applies to (for example [`SITE_PAR_TASK`]).
    pub site: String,
    /// The failure to inject.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: FaultTrigger,
}

/// A replayable chaos schedule: a seed plus the rules drawn from it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed for probabilistic triggers.
    pub seed: u64,
    /// Rules, consulted in order; the first match at a site fires.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules (nothing ever fires).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with the given seed and no rules yet.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, site: &str, kind: FaultKind, trigger: FaultTrigger) -> FaultPlan {
        self.rules.push(FaultRule {
            site: site.to_string(),
            kind,
            trigger,
        });
        self
    }

    /// True when the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// One fault that actually fired, for logs and assertions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Site name where the fault fired.
    pub site: String,
    /// Work-item index at the site.
    pub index: u64,
    /// Attempt number (0 = first try, 1 = retry).
    pub attempt: u64,
    /// The injected failure.
    pub kind: FaultKind,
}

/// Consults a [`FaultPlan`] at instrumented sites and logs what fired.
///
/// Cloning shares the plan and the event log, so the injector can be
/// carried onto worker threads and every fired fault still lands in one
/// log.
#[derive(Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    log: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan: Arc::new(plan),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether a fault fires at `(site, index, attempt)`.
    ///
    /// Pure in the plan: the same coordinates always give the same
    /// answer. Fired faults are appended to the shared event log.
    pub fn roll(&self, site: &str, index: u64, attempt: u64) -> Option<FaultKind> {
        let fired = self.plan.rules.iter().find_map(|rule| {
            if rule.site != site {
                return None;
            }
            let hit = match rule.trigger {
                FaultTrigger::AtIndex(at) => attempt == 0 && index == at,
                FaultTrigger::Probability(p) => {
                    if p <= 0.0 {
                        false
                    } else if p >= 1.0 {
                        true
                    } else {
                        let mut rng = Seed::new(self.plan.seed)
                            .child(site)
                            .child_indexed("index", index)
                            .child_indexed("attempt", attempt)
                            .rng();
                        let draw = rng.gen::<u64>() as f64 / u64::MAX as f64;
                        draw < p
                    }
                }
            };
            hit.then_some(rule.kind)
        })?;
        let mut log = match self.log.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        log.push(FaultEvent {
            site: site.to_string(),
            index,
            attempt,
            kind: fired,
        });
        drop(log);
        appstore_obs::counter(appstore_obs::names::FAULTS_INJECTED, 1);
        Some(fired)
    }

    /// Every fault that fired so far, sorted by `(site, index, attempt)`
    /// so the log is deterministic regardless of worker interleaving.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = match self.log.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        events.sort_by(|a, b| {
            (a.site.as_str(), a.index, a.attempt).cmp(&(b.site.as_str(), b.index, b.attempt))
        });
        events
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<FaultInjector>> = const { RefCell::new(None) };
}

/// Restores the previously installed injector on drop (panic-safe).
struct InjectorGuard {
    previous: Option<FaultInjector>,
}

impl Drop for InjectorGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// Runs `f` with `injector` installed for the current thread.
///
/// Nested calls shadow the outer injector and restore it on exit, even
/// on panic — the same discipline the observability context uses.
pub fn with_injector<R>(injector: &FaultInjector, f: impl FnOnce() -> R) -> R {
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(injector.clone()));
    let _guard = InjectorGuard { previous };
    f()
}

/// The injector installed on the current thread, if any — capture it
/// before spawning workers and re-enter with [`with_injector`].
pub fn capture() -> Option<FaultInjector> {
    ACTIVE.with(|slot| slot.borrow().clone())
}

/// Consults the thread's installed injector; `None` (never a fault)
/// when no injector is installed, so production paths cost one
/// thread-local read.
pub fn roll(site: &str, index: u64, attempt: u64) -> Option<FaultKind> {
    ACTIVE.with(|slot| {
        let borrowed = slot.borrow();
        borrowed
            .as_ref()
            .and_then(|injector| injector.roll(site, index, attempt))
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn no_injector_means_no_faults() {
        assert_eq!(roll("anything", 0, 0), None);
    }

    #[test]
    fn at_index_fires_once_per_site_index_and_not_on_retry() {
        let injector = FaultInjector::new(FaultPlan::seeded(7).rule(
            "write",
            FaultKind::IoError,
            FaultTrigger::AtIndex(3),
        ));
        assert_eq!(injector.roll("write", 2, 0), None);
        assert_eq!(injector.roll("write", 3, 0), Some(FaultKind::IoError));
        assert_eq!(injector.roll("write", 3, 1), None, "retry clears it");
        assert_eq!(injector.roll("other", 3, 0), None, "site must match");
    }

    #[test]
    fn probability_rolls_are_deterministic_and_plan_seeded() {
        let plan = FaultPlan::seeded(11).rule(
            "task",
            FaultKind::WorkerPanic,
            FaultTrigger::Probability(0.5),
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let decisions: Vec<Option<FaultKind>> = (0..64).map(|i| a.roll("task", i, 0)).collect();
        let replay: Vec<Option<FaultKind>> = (0..64).map(|i| b.roll("task", i, 0)).collect();
        assert_eq!(decisions, replay, "same plan, same decisions");
        let fired = decisions.iter().filter(|d| d.is_some()).count();
        assert!(fired > 0 && fired < 64, "p=0.5 fires sometimes, not always");
        // A different seed gives a different schedule.
        let c = FaultInjector::new(FaultPlan::seeded(12).rule(
            "task",
            FaultKind::WorkerPanic,
            FaultTrigger::Probability(0.5),
        ));
        let other: Vec<Option<FaultKind>> = (0..64).map(|i| c.roll("task", i, 0)).collect();
        assert_ne!(decisions, other);
    }

    #[test]
    fn probability_extremes() {
        let never = FaultInjector::new(FaultPlan::seeded(1).rule(
            "s",
            FaultKind::Corrupt,
            FaultTrigger::Probability(0.0),
        ));
        let always = FaultInjector::new(FaultPlan::seeded(1).rule(
            "s",
            FaultKind::Corrupt,
            FaultTrigger::Probability(1.0),
        ));
        for i in 0..16 {
            assert_eq!(never.roll("s", i, 0), None);
            assert_eq!(always.roll("s", i, 0), Some(FaultKind::Corrupt));
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let injector = FaultInjector::new(
            FaultPlan::seeded(3)
                .rule("w", FaultKind::IoError, FaultTrigger::AtIndex(5))
                .rule("w", FaultKind::Corrupt, FaultTrigger::AtIndex(5)),
        );
        assert_eq!(injector.roll("w", 5, 0), Some(FaultKind::IoError));
    }

    #[test]
    fn events_are_sorted_and_shared_across_clones() {
        let injector = FaultInjector::new(
            FaultPlan::seeded(5)
                .rule("b", FaultKind::Corrupt, FaultTrigger::AtIndex(1))
                .rule("a", FaultKind::IoError, FaultTrigger::AtIndex(2)),
        );
        let clone = injector.clone();
        assert!(clone.roll("b", 1, 0).is_some());
        assert!(injector.roll("a", 2, 0).is_some());
        let events = injector.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].site, "a");
        assert_eq!(events[1].site, "b");
    }

    #[test]
    fn with_injector_scopes_and_restores() {
        let injector = FaultInjector::new(FaultPlan::seeded(2).rule(
            "s",
            FaultKind::IoError,
            FaultTrigger::AtIndex(0),
        ));
        assert_eq!(roll("s", 0, 0), None);
        with_injector(&injector, || {
            assert_eq!(roll("s", 0, 0), Some(FaultKind::IoError));
        });
        assert_eq!(roll("s", 0, 0), None, "uninstalled after scope");
        assert!(capture().is_none());
    }

    #[test]
    fn with_injector_restores_after_panic() {
        let injector = FaultInjector::new(FaultPlan::none());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_injector(&injector, || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(capture().is_none(), "guard restored on unwind");
    }

    #[test]
    fn fault_kind_labels_are_stable() {
        assert_eq!(FaultKind::IoError.label(), "io-error");
        assert_eq!(FaultKind::Delay { virtual_ms: 3 }.label(), "delay");
        assert_eq!(FaultKind::ReplicaCrash.label(), "replica-crash");
        assert_eq!(
            FaultKind::ReplicaPartition { virtual_ms: 5 }.label(),
            "replica-partition"
        );
        assert_eq!(
            FaultKind::ReplicaSlow { virtual_ms: 7 }.label(),
            "replica-slow"
        );
        assert_eq!(FaultKind::ReplicaDrift.label(), "replica-drift");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::seeded(42)
            .rule(
                "w",
                FaultKind::Delay { virtual_ms: 9 },
                FaultTrigger::Probability(0.25),
            )
            .rule("w", FaultKind::PartialWrite, FaultTrigger::AtIndex(7))
            .rule("r", FaultKind::ReplicaCrash, FaultTrigger::AtIndex(3))
            .rule(
                "r",
                FaultKind::ReplicaPartition { virtual_ms: 500 },
                FaultTrigger::AtIndex(4),
            )
            .rule(
                "r",
                FaultKind::ReplicaSlow { virtual_ms: 90 },
                FaultTrigger::Probability(0.5),
            )
            .rule("r", FaultKind::ReplicaDrift, FaultTrigger::AtIndex(9));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}

//! CRC32-sealed journal lines — the shared durable-log primitive.
//!
//! The resumable crawler introduced a line-delimited journal where every
//! line is *sealed*: prefixed with the CRC32 of its payload so storage
//! corruption is detected instead of silently parsed. The checkpointed
//! fit pipeline needs the same guarantee for its own intermediate state,
//! so the format lives here and both consumers delegate to it.
//!
//! A sealed line is `"{crc32:08x} {payload}"`. [`unseal`] classifies a
//! line as [`Unsealed::Valid`] (seal matches), [`Unsealed::Mismatch`]
//! (seal-shaped but the checksum disagrees — bit rot or a torn write) or
//! [`Unsealed::Bare`] (not seal-shaped at all; legacy journals stored
//! bare JSON and callers may still accept it). Payload semantics — what
//! the sealed string *means* — stay with the caller.

use std::io::Write;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Renders `payload` as a sealed journal line (without trailing newline).
pub fn seal(payload: &str) -> String {
    format!("{:08x} {payload}", crc32(payload.as_bytes()))
}

/// The classification [`unseal`] gives one journal line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unsealed<'a> {
    /// Seal-shaped and the checksum matches; the verified payload.
    Valid(&'a str),
    /// Seal-shaped but the checksum disagrees with the payload.
    Mismatch,
    /// Not seal-shaped; the whole line, for legacy bare-payload readers.
    Bare(&'a str),
}

/// Classifies one journal line against its seal.
///
/// A line counts as seal-shaped when it starts with eight hex digits and
/// a space followed by at least one payload byte; anything else is
/// [`Unsealed::Bare`] and its meaning is up to the caller.
pub fn unseal(line: &str) -> Unsealed<'_> {
    let bytes = line.as_bytes();
    if bytes.len() > 9 && bytes[8] == b' ' && bytes[..8].iter().all(u8::is_ascii_hexdigit) {
        match u32::from_str_radix(&line[..8], 16) {
            Ok(expected) if crc32(&bytes[9..]) == expected => Unsealed::Valid(&line[9..]),
            Ok(_) => Unsealed::Mismatch,
            // Unreachable after the hex-digit guard, but a typed fallback
            // beats a panic on a hostile journal.
            Err(_) => Unsealed::Bare(line),
        }
    } else {
        Unsealed::Bare(line)
    }
}

/// Appends sealed lines to a byte stream.
///
/// Each [`append`](SealedWriter::append) writes one sealed line plus a
/// newline; callers decide when to [`flush`](SealedWriter::flush) (a
/// checkpoint stream flushes every line, a bulk export once at the end).
pub struct SealedWriter<W: Write> {
    writer: W,
}

impl<W: Write> SealedWriter<W> {
    /// Wraps a byte stream positioned where the next line should go.
    pub fn new(writer: W) -> SealedWriter<W> {
        SealedWriter { writer }
    }

    /// Seals `payload` and writes it as one newline-terminated line.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        let line = seal(payload);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flushes the underlying stream.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn seal_then_unseal_round_trips() {
        let line = seal(r#"{"k":1}"#);
        assert_eq!(unseal(&line), Unsealed::Valid(r#"{"k":1}"#));
    }

    #[test]
    fn flipped_payload_byte_is_a_mismatch() {
        let mut line = seal("payload").into_bytes();
        let last = line.len() - 1;
        line[last] ^= 0x01;
        let line = String::from_utf8(line).unwrap();
        assert_eq!(unseal(&line), Unsealed::Mismatch);
    }

    #[test]
    fn flipped_seal_digit_is_a_mismatch() {
        let line = seal("payload");
        let flipped = if line.starts_with('0') {
            line.replacen('0', "1", 1)
        } else {
            let tail = &line[1..];
            format!("0{tail}")
        };
        assert_eq!(unseal(&flipped), Unsealed::Mismatch);
    }

    #[test]
    fn non_seal_shaped_lines_are_bare() {
        for line in ["", "{}", "not sealed", "0123456 short-prefix", "xyz45678 p"] {
            assert_eq!(unseal(line), Unsealed::Bare(line), "line = {line:?}");
        }
    }

    #[test]
    fn sealed_writer_emits_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut w = SealedWriter::new(&mut buf);
            w.append("one").unwrap();
            w.append("two").unwrap();
            w.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(unseal(lines[0]), Unsealed::Valid("one"));
        assert_eq!(unseal(lines[1]), Unsealed::Valid("two"));
    }
}

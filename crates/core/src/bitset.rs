//! A dense fixed-capacity bitset.
//!
//! The fetch-at-most-once property requires remembering, per simulated
//! user, which apps have already been downloaded. At the paper's scale
//! (hundreds of thousands of users, tens of thousands of apps) hash sets
//! are too heavy; a flat bit vector is one bit per (user, app) pair and
//! the membership test is a single word load.

use serde::{Deserialize, Serialize};

/// A fixed-capacity set of `usize` indexes stored one bit each.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseBitset {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl DenseBitset {
    /// Creates an empty set able to hold indexes `0..capacity`.
    pub fn with_capacity(capacity: usize) -> DenseBitset {
        DenseBitset {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Number of indexes the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of indexes currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no index is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if every index in `0..capacity` is set.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Tests membership.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Inserts `index`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if *word & mask != 0 {
            false
        } else {
            *word |= mask;
            self.len += 1;
            true
        }
    }

    /// Removes `index`; returns true if it was present.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "index {index} out of capacity");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over set indexes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitset::with_capacity(100);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn word_boundaries() {
        let mut s = DenseBitset::with_capacity(130);
        for i in [0, 63, 64, 127, 128, 129] {
            assert!(s.insert(i));
        }
        assert_eq!(s.len(), 6);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 129]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = DenseBitset::with_capacity(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(64));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn contains_out_of_range_panics() {
        let s = DenseBitset::with_capacity(10);
        let _ = s.contains(10);
    }

    #[test]
    fn zero_capacity_is_full_and_empty() {
        let s = DenseBitset::with_capacity(0);
        assert!(s.is_empty());
        assert!(s.is_full());
    }

    proptest! {
        #[test]
        fn matches_reference_hashset(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..400)) {
            let mut s = DenseBitset::with_capacity(200);
            let mut reference = std::collections::BTreeSet::new();
            for (idx, add) in ops {
                if add {
                    prop_assert_eq!(s.insert(idx), reference.insert(idx));
                } else {
                    prop_assert_eq!(s.remove(idx), reference.remove(&idx));
                }
            }
            prop_assert_eq!(s.len(), reference.len());
            let got: Vec<usize> = s.iter().collect();
            let want: Vec<usize> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}

//! Deterministic fork/join parallelism for seeded Monte-Carlo work.
//!
//! Every parallel site in this workspace follows the same scheme, first
//! established by the per-day child seeds of the resumable crawler and
//! extended here to whole experiment pipelines:
//!
//! 1. each work item derives its own child seed (`seed.child_indexed`)
//!    *before* any thread is spawned, so the randomness a worker consumes
//!    never depends on which thread runs it;
//! 2. workers compute results independently and return them tagged with
//!    the item's input index;
//! 3. the caller merges results **in input order**, so floating-point
//!    reductions associate identically no matter how many threads ran.
//!
//! Under this contract [`par_map_indexed`] is observationally equivalent
//! to a sequential `map` — byte-identical output for any thread count —
//! which is what lets `repro --threads N` promise bit-reproducibility.

/// Resolves a requested thread count: `0` means "one per available CPU".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Applies `f` to every item on up to `threads` worker threads and
/// returns the results **in input order**.
///
/// `f` receives the item's input index alongside the item, so callers can
/// derive per-item child seeds from it. With `threads <= 1` (or a single
/// item) everything runs on the calling thread — same code path a
/// `--threads 1` run takes, and the reference behaviour the parallel path
/// must reproduce byte-for-byte.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_threads(threads).min(items.len()).max(1);
    // Call and task counts are functions of the input alone; the
    // per-worker task distribution depends on the worker count, so it is
    // recorded as volatile and zeroed in comparable snapshots.
    appstore_obs::counter(appstore_obs::names::CORE_PAR_CALLS, 1);
    appstore_obs::counter(appstore_obs::names::CORE_PAR_TASKS, items.len() as u64);
    if workers <= 1 {
        appstore_obs::observe_volatile(
            appstore_obs::names::CORE_PAR_WORKER_TASKS,
            items.len() as u64,
        );
        return items
            .into_iter()
            .enumerate()
            // Each item runs on its own trace track named by its input
            // index, so trace attribution is a function of the input
            // alone — identical no matter how many threads ran.
            .map(|(i, t)| appstore_obs::with_track(i as u64, || f(i, t)))
            .collect();
    }
    // Split into contiguous ownership chunks, remembering each chunk's
    // starting index so results can be placed back in input order.
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut rest = items;
    let mut start = 0;
    while !rest.is_empty() {
        let take = chunk_len.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push((start, std::mem::replace(&mut rest, tail)));
        start += take;
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(start, || None);
    // Carry the caller's observability context onto each worker so spans
    // and counters recorded inside `f` land in the same registry under
    // the same span path as a sequential run would put them.
    let obs_ctx = appstore_obs::capture();
    std::thread::scope(|scope| {
        let f = &f;
        let obs_ctx = &obs_ctx;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(base, chunk)| {
                scope.spawn(move || {
                    let work = || {
                        appstore_obs::observe_volatile(
                            appstore_obs::names::CORE_PAR_WORKER_TASKS,
                            chunk.len() as u64,
                        );
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(k, item)| {
                                let i = base + k;
                                (i, appstore_obs::with_track(i as u64, || f(i, item)))
                            })
                            .collect::<Vec<(usize, R)>>()
                    };
                    match obs_ctx {
                        Some(ctx) => ctx.run(work),
                        None => work(),
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::Seed;
    use rand::Rng;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_indexed(items.clone(), threads, |_, x| x * 2);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..57).collect();
        let got = par_map_indexed(items, 4, |i, x| (i, x));
        for (i, (idx, item)) in got.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(i, item);
        }
    }

    #[test]
    fn seeded_draws_are_thread_count_invariant() {
        let draw = |i: usize, _: ()| -> u64 {
            let mut rng = Seed::new(9).child_indexed("item", i as u64).rng();
            rng.gen::<u64>()
        };
        let serial = par_map_indexed(vec![(); 40], 1, draw);
        let parallel = par_map_indexed(vec![(); 40], 7, draw);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map_indexed(Vec::<u32>::new(), 4, |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map_indexed(vec![1u32, 2, 3], 100, |_, x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(5), 5);
    }

    #[test]
    fn metrics_recorded_on_workers_reach_the_callers_registry() {
        let run = |threads: usize| {
            let registry = appstore_obs::Registry::new();
            appstore_obs::with_registry(&registry, || {
                appstore_obs::span("batch", || {
                    par_map_indexed((0..23).collect::<Vec<u64>>(), threads, |_, x| {
                        appstore_obs::counter("items.seen", 1);
                        appstore_obs::span("item", || x * 2)
                    })
                })
            });
            registry
        };
        for threads in [1, 2, 8] {
            let registry = run(threads);
            assert_eq!(
                registry.counter_value("items.seen"),
                23,
                "threads = {threads}"
            );
            assert_eq!(registry.counter_value("core.par.tasks"), 23);
            let json = registry.snapshot_json(true);
            assert!(json.contains("\"batch/item\""), "span path crosses threads");
        }
        // The comparable (no-timings) snapshot is thread-count invariant.
        let one = run(1).snapshot_json(true);
        assert_eq!(one, run(2).snapshot_json(true));
        assert_eq!(one, run(8).snapshot_json(true));
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let _ = par_map_indexed(vec![0u32, 1, 2, 3], 2, |_, x| {
            assert!(x != 3, "boom");
            x
        });
    }
}

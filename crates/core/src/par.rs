//! Deterministic fork/join parallelism for seeded Monte-Carlo work.
//!
//! Every parallel site in this workspace follows the same scheme, first
//! established by the per-day child seeds of the resumable crawler and
//! extended here to whole experiment pipelines:
//!
//! 1. each work item derives its own child seed (`seed.child_indexed`)
//!    *before* any thread is spawned, so the randomness a worker consumes
//!    never depends on which thread runs it;
//! 2. workers compute results independently and return them tagged with
//!    the item's input index;
//! 3. the caller merges results **in input order**, so floating-point
//!    reductions associate identically no matter how many threads ran.
//!
//! Under this contract [`par_map_indexed`] is observationally equivalent
//! to a sequential `map` — byte-identical output for any thread count —
//! which is what lets `repro --threads N` promise bit-reproducibility.
//!
//! Worker panics are **isolated**: each task runs under `catch_unwind`
//! and a panicking task is retried once on its own cloned input (the
//! retry is `attempt = 1` at the [`faults::SITE_PAR_TASK`] injection
//! site, so a scheduled [`faults::FaultKind::WorkerPanic`] clears on
//! retry). A task that panics twice propagates its original panic from
//! [`par_map_indexed`], or degrades to `None` in
//! [`par_map_indexed_lossy`]. When no panic fires the isolation layer is
//! observationally free and the bit-identical contract is untouched.

use crate::faults;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Resolves a requested thread count: `0` means "one per available CPU".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A panic payload carried from an isolated task back to the caller.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Runs one attempt of one task on its own trace track, catching panics.
///
/// The fault injector is consulted before the task body runs, so an
/// injected [`faults::FaultKind::WorkerPanic`] exercises exactly the
/// unwind path a real bug would take.
fn run_attempt<T, R>(
    f: &(impl Fn(usize, T) -> R + Sync),
    i: usize,
    item: T,
    attempt: u64,
) -> Result<R, PanicPayload> {
    catch_unwind(AssertUnwindSafe(|| {
        // Each item runs on its own trace track named by its input
        // index, so trace attribution is a function of the input alone —
        // identical no matter how many threads ran.
        appstore_obs::with_track(i as u64, || {
            if let Some(faults::FaultKind::WorkerPanic) =
                faults::roll(faults::SITE_PAR_TASK, i as u64, attempt)
            {
                panic!("injected worker panic at task {i}");
            }
            f(i, item)
        })
    }))
}

/// Runs one task with retry-once panic isolation.
fn run_isolated<T: Clone, R>(
    f: &(impl Fn(usize, T) -> R + Sync),
    i: usize,
    item: T,
) -> Result<R, PanicPayload> {
    let retry = item.clone();
    match run_attempt(f, i, item, 0) {
        Ok(r) => Ok(r),
        Err(_) => {
            appstore_obs::counter(appstore_obs::names::CORE_PAR_PANICS_ISOLATED, 1);
            run_attempt(f, i, retry, 1)
        }
    }
}

/// Shared fan-out: every task's result or (double-panic) payload, in
/// input order.
fn par_try_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<R, PanicPayload>>
where
    T: Clone + Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = effective_threads(threads).min(items.len()).max(1);
    // Call and task counts are functions of the input alone; the
    // per-worker task distribution depends on the worker count, so it is
    // recorded as volatile and zeroed in comparable snapshots.
    appstore_obs::counter(appstore_obs::names::CORE_PAR_CALLS, 1);
    appstore_obs::counter(appstore_obs::names::CORE_PAR_TASKS, items.len() as u64);
    if workers <= 1 {
        appstore_obs::observe_volatile(
            appstore_obs::names::CORE_PAR_WORKER_TASKS,
            items.len() as u64,
        );
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| run_isolated(&f, i, t))
            .collect();
    }
    // Split into contiguous ownership chunks, remembering each chunk's
    // starting index so results can be placed back in input order.
    let chunk_len = items.len().div_ceil(workers);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut rest = items;
    let mut start = 0;
    while !rest.is_empty() {
        let take = chunk_len.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push((start, std::mem::replace(&mut rest, tail)));
        start += take;
    }
    let mut out: Vec<Option<Result<R, PanicPayload>>> = Vec::new();
    out.resize_with(start, || None);
    // Carry the caller's observability context and fault injector onto
    // each worker so spans and counters land in the same registry as a
    // sequential run and injected faults fire on the same schedule.
    let obs_ctx = appstore_obs::capture();
    let fault_ctx = faults::capture();
    std::thread::scope(|scope| {
        let f = &f;
        let obs_ctx = &obs_ctx;
        let fault_ctx = &fault_ctx;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(base, chunk)| {
                scope.spawn(move || {
                    let work = || {
                        appstore_obs::observe_volatile(
                            appstore_obs::names::CORE_PAR_WORKER_TASKS,
                            chunk.len() as u64,
                        );
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(k, item)| {
                                let i = base + k;
                                (i, run_isolated(f, i, item))
                            })
                            .collect::<Vec<(usize, Result<R, PanicPayload>)>>()
                    };
                    let work = || match fault_ctx {
                        Some(injector) => faults::with_injector(injector, work),
                        None => work(),
                    };
                    match obs_ctx {
                        Some(ctx) => ctx.run(work),
                        None => work(),
                    }
                })
            })
            .collect();
        for handle in handles {
            // Tasks catch their own panics, so a worker thread can only
            // die abnormally outside any task body.
            for (i, r) in handle.join().expect("parallel worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

/// Applies `f` to every item on up to `threads` worker threads and
/// returns the results **in input order**.
///
/// `f` receives the item's input index alongside the item, so callers can
/// derive per-item child seeds from it. With `threads <= 1` (or a single
/// item) everything runs on the calling thread — same code path a
/// `--threads 1` run takes, and the reference behaviour the parallel path
/// must reproduce byte-for-byte.
///
/// A task that panics is retried once on a clone of its input (isolated
/// via `catch_unwind`; counted under `core.par.panics_isolated`).
///
/// # Panics
/// Re-raises the original panic of any task that panicked twice.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Clone + Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_try_map(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
        .collect()
}

/// Like [`par_map_indexed`], but a task that panics twice **degrades**
/// to `None` instead of taking the whole map down (counted under
/// `core.par.tasks_degraded`). Use where partial results are better than
/// none — chaos experiments and best-effort sweeps.
pub fn par_map_indexed_lossy<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Option<R>>
where
    T: Clone + Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_try_map(items, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(value) => Some(value),
            Err(_) => {
                appstore_obs::counter(appstore_obs::names::CORE_PAR_TASKS_DEGRADED, 1);
                None
            }
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::faults::{FaultInjector, FaultKind, FaultPlan, FaultTrigger};
    use crate::seed::Seed;
    use rand::Rng;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_indexed(items.clone(), threads, |_, x| x * 2);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..57).collect();
        let got = par_map_indexed(items, 4, |i, x| (i, x));
        for (i, (idx, item)) in got.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(i, item);
        }
    }

    #[test]
    fn seeded_draws_are_thread_count_invariant() {
        let draw = |i: usize, _: ()| -> u64 {
            let mut rng = Seed::new(9).child_indexed("item", i as u64).rng();
            rng.gen::<u64>()
        };
        let serial = par_map_indexed(vec![(); 40], 1, draw);
        let parallel = par_map_indexed(vec![(); 40], 7, draw);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map_indexed(Vec::<u32>::new(), 4, |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map_indexed(vec![1u32, 2, 3], 100, |_, x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(5), 5);
    }

    #[test]
    fn metrics_recorded_on_workers_reach_the_callers_registry() {
        let run = |threads: usize| {
            let registry = appstore_obs::Registry::new();
            appstore_obs::with_registry(&registry, || {
                appstore_obs::span("batch", || {
                    par_map_indexed((0..23).collect::<Vec<u64>>(), threads, |_, x| {
                        appstore_obs::counter("test.items.seen", 1);
                        appstore_obs::span("item", || x * 2)
                    })
                })
            });
            registry
        };
        for threads in [1, 2, 8] {
            let registry = run(threads);
            assert_eq!(
                registry.counter_value("test.items.seen"),
                23,
                "threads = {threads}"
            );
            assert_eq!(registry.counter_value("core.par.tasks"), 23);
            let json = registry.snapshot_json(true);
            assert!(json.contains("\"batch/item\""), "span path crosses threads");
        }
        // The comparable (no-timings) snapshot is thread-count invariant.
        let one = run(1).snapshot_json(true);
        assert_eq!(one, run(2).snapshot_json(true));
        assert_eq!(one, run(8).snapshot_json(true));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        // A task that panics on every attempt re-raises its original
        // panic payload after the retry.
        let _ = par_map_indexed(vec![0u32, 1, 2, 3], 2, |_, x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn injected_panic_is_isolated_and_output_is_unchanged() {
        let injector = FaultInjector::new(FaultPlan::seeded(17).rule(
            faults::SITE_PAR_TASK,
            FaultKind::WorkerPanic,
            FaultTrigger::AtIndex(5),
        ));
        let items: Vec<u64> = (0..20).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 4] {
            let registry = appstore_obs::Registry::new();
            let got = appstore_obs::with_registry(&registry, || {
                faults::with_injector(&injector, || {
                    par_map_indexed(items.clone(), threads, |_, x| x * 3)
                })
            });
            assert_eq!(got, expected, "threads = {threads}");
            assert_eq!(
                registry.counter_value(appstore_obs::names::CORE_PAR_PANICS_ISOLATED),
                1,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn lossy_map_degrades_twice_panicking_tasks() {
        // Probability 1.0 fires on both attempts: the task can never
        // succeed and must degrade to None without sinking the map.
        let injector = FaultInjector::new(FaultPlan::seeded(3).rule(
            faults::SITE_PAR_TASK,
            FaultKind::WorkerPanic,
            FaultTrigger::Probability(1.0),
        ));
        let registry = appstore_obs::Registry::new();
        let got = appstore_obs::with_registry(&registry, || {
            faults::with_injector(&injector, || {
                par_map_indexed_lossy(vec![1u32, 2, 3], 2, |_, x| x + 1)
            })
        });
        assert_eq!(got, vec![None, None, None]);
        assert_eq!(
            registry.counter_value(appstore_obs::names::CORE_PAR_TASKS_DEGRADED),
            3
        );
    }

    #[test]
    fn lossy_map_without_faults_matches_strict() {
        let items: Vec<u64> = (0..31).collect();
        let strict = par_map_indexed(items.clone(), 3, |i, x| x + i as u64);
        let lossy = par_map_indexed_lossy(items, 3, |i, x| x + i as u64);
        assert_eq!(
            lossy.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            strict
        );
    }

    #[test]
    fn injector_reaches_parallel_workers() {
        // AtIndex targets fire exactly once even when tasks run on
        // spawned workers — the injector context crosses threads.
        let injector = FaultInjector::new(FaultPlan::seeded(29).rule(
            faults::SITE_PAR_TASK,
            FaultKind::WorkerPanic,
            FaultTrigger::AtIndex(13),
        ));
        let got = faults::with_injector(&injector, || {
            par_map_indexed((0..40u64).collect(), 8, |_, x| x)
        });
        assert_eq!(got, (0..40u64).collect::<Vec<_>>());
        let events = injector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].index, 13);
        assert_eq!(events[0].attempt, 0);
    }
}

//! Metric storage and deterministic JSON export.
//!
//! All state lives behind one mutex in `BTreeMap`s, so export order is
//! the lexicographic key order regardless of insertion or thread
//! interleaving. Exported values are integers only — no floats — so the
//! rendered JSON is byte-stable.

use crate::hdr::LogLinearHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Upper bounds of the fixed histogram bucket layout: powers of two from
/// 1 to 2^40, plus an implicit overflow bucket. Fixed so histograms from
/// different runs always have comparable shapes.
pub const POW2_BUCKET_BOUNDS: [u64; 41] = {
    let mut bounds = [0u64; 41];
    let mut i = 0;
    while i < 41 {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

#[derive(Clone, Default)]
struct Counter {
    value: u64,
    volatile: bool,
}

#[derive(Clone, Default)]
struct Gauge {
    value: i64,
    volatile: bool,
}

#[derive(Clone)]
struct Histogram {
    /// `counts[i]` is the number of observations `<= POW2_BUCKET_BOUNDS[i]`
    /// and greater than the previous bound; the last slot is overflow.
    counts: [u64; POW2_BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
    volatile: bool,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; POW2_BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            volatile: false,
        }
    }
}

#[derive(Clone, Default)]
struct Span {
    calls: u64,
    total_ns: u64,
}

#[derive(Clone, Default)]
struct HdrCell {
    hist: LogLinearHistogram,
    volatile: bool,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    hdr: BTreeMap<String, HdrCell>,
    spans: BTreeMap<String, Span>,
}

/// A metric registry. Cheap to clone (shared handle); safe to record
/// into from many threads at once.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<State>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    pub(crate) fn counter_add(&self, name: &str, delta: u64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.counters.entry(name.to_string()).or_default();
        cell.value = cell.value.saturating_add(delta);
        cell.volatile |= volatile;
    }

    pub(crate) fn gauge_set(&self, name: &str, value: i64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.gauges.entry(name.to_string()).or_default();
        cell.value = value;
        cell.volatile |= volatile;
    }

    pub(crate) fn histogram_observe(&self, name: &str, value: u64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.histograms.entry(name.to_string()).or_default();
        let bucket = POW2_BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(POW2_BUCKET_BOUNDS.len());
        cell.counts[bucket] += 1;
        cell.count += 1;
        cell.sum = cell.sum.saturating_add(value);
        cell.volatile |= volatile;
    }

    pub(crate) fn hdr_observe(&self, name: &str, value: u64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.hdr.entry(name.to_string()).or_default();
        cell.hist.record(value);
        cell.volatile |= volatile;
    }

    pub(crate) fn span_record(&self, path: &str, elapsed_ns: u64) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.spans.entry(path.to_string()).or_default();
        cell.calls += 1;
        cell.total_ns = cell.total_ns.saturating_add(elapsed_ns);
    }

    /// Reads a counter's current value (0 if never recorded). For tests
    /// and in-process assertions; exports should go through snapshots.
    pub fn counter_value(&self, name: &str) -> u64 {
        let state = self.inner.lock().unwrap();
        state.counters.get(name).map_or(0, |c| c.value)
    }

    /// Reads a quantile of a log-linear histogram previously fed through
    /// [`crate::observe_hdr`]. `None` if the histogram was never recorded.
    pub fn hdr_quantile(&self, name: &str, q: f64) -> Option<u64> {
        let state = self.inner.lock().unwrap();
        state.hdr.get(name).map(|cell| cell.hist.quantile(q))
    }

    /// Renders the registry as pretty-printed JSON with stable key order.
    ///
    /// With `no_timings`, every volatile field — span durations, volatile
    /// counters/gauges/histograms — renders as zero while its key stays
    /// in place, so two snapshots from runs that differ only in timing or
    /// worker scheduling are byte-identical.
    pub fn snapshot_json(&self, no_timings: bool) -> String {
        self.snapshot_json_indented(no_timings, 0)
    }

    /// Like [`Registry::snapshot_json`] but indented `level` steps (two
    /// spaces each) past the first line, for embedding inside a larger
    /// hand-built JSON document.
    pub fn snapshot_json_indented(&self, no_timings: bool, level: usize) -> String {
        let state = self.inner.lock().unwrap();
        let pad = "  ".repeat(level);
        let mut out = String::new();
        out.push_str("{\n");

        let render_u64 = |vol: bool, v: u64| if no_timings && vol { 0 } else { v };

        write!(out, "{pad}  \"counters\": {{").unwrap();
        for (i, (name, c)) in state.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n{pad}    {}: {}",
                json_string(name),
                render_u64(c.volatile, c.value)
            )
            .unwrap();
        }
        if state.counters.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"gauges\": {{").unwrap();
        for (i, (name, g)) in state.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let value = if no_timings && g.volatile { 0 } else { g.value };
            write!(out, "{sep}\n{pad}    {}: {}", json_string(name), value).unwrap();
        }
        if state.gauges.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"histograms\": {{").unwrap();
        for (i, (name, h)) in state.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let zero = no_timings && h.volatile;
            write!(
                out,
                "{sep}\n{pad}    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(name),
                render_u64(zero, h.count),
                render_u64(zero, h.sum)
            )
            .unwrap();
            if !zero {
                // Only non-empty buckets, as [upper_bound, count] pairs;
                // the overflow bucket uses bound 0 as a sentinel.
                let mut first = true;
                for (b, &count) in h.counts.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let bound = POW2_BUCKET_BOUNDS.get(b).copied().unwrap_or(0);
                    if !first {
                        out.push_str(", ");
                    }
                    write!(out, "[{bound}, {count}]").unwrap();
                    first = false;
                }
            }
            out.push_str("]}");
        }
        if state.histograms.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"hdr\": {{").unwrap();
        for (i, (name, cell)) in state.hdr.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let zero = no_timings && cell.volatile;
            write!(
                out,
                "{sep}\n{pad}    {}: {{\"count\": {}, \"sum\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                json_string(name),
                render_u64(zero, cell.hist.count()),
                render_u64(zero, cell.hist.sum()),
                render_u64(zero, cell.hist.p50()),
                render_u64(zero, cell.hist.p90()),
                render_u64(zero, cell.hist.p99()),
                render_u64(zero, cell.hist.p999()),
            )
            .unwrap();
            if !zero {
                for (b, (upper, count)) in cell.hist.buckets().enumerate() {
                    if b > 0 {
                        out.push_str(", ");
                    }
                    write!(out, "[{upper}, {count}]").unwrap();
                }
            }
            out.push_str("]}");
        }
        if state.hdr.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"spans\": {{").unwrap();
        for (i, (path, s)) in state.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n{pad}    {}: {{\"calls\": {}, \"total_ns\": {}}}",
                json_string(path),
                s.calls,
                render_u64(true, s.total_ns)
            )
            .unwrap();
        }
        if state.spans.is_empty() {
            out.push('}');
        } else {
            write!(out, "\n{pad}  }}").unwrap();
        }

        write!(out, "\n{pad}}}").unwrap();
        out
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4).
    ///
    /// Guarantees:
    /// * **Deterministic ordering** — sections render counters, gauges,
    ///   pow-2 histograms, log-linear histograms, spans; metric names
    ///   within a section come out in `BTreeMap` (lexicographic) order.
    /// * **Volatility flagging** — every volatile metric carries a
    ///   `# CLASS <name> volatile` comment line so scrapers can tell
    ///   timing-dependent series from deterministic ones.
    /// * **Cumulative histograms** — `_bucket{le="..."}` counts are
    ///   cumulative and the `le="+Inf"` sample always equals `_count`.
    ///
    /// With `no_timings`, volatile values render as zero (keys stay), so
    /// the exposition is byte-identical across thread counts and runs.
    pub fn render_prometheus(&self, no_timings: bool) -> String {
        let state = self.inner.lock().unwrap();
        let mut out = String::new();
        let render_u64 = |vol: bool, v: u64| if no_timings && vol { 0 } else { v };

        for (name, c) in &state.counters {
            let pname = prometheus_name(name);
            writeln!(out, "# TYPE {pname} counter").unwrap();
            if c.volatile {
                writeln!(out, "# CLASS {pname} volatile").unwrap();
            }
            writeln!(out, "{pname} {}", render_u64(c.volatile, c.value)).unwrap();
        }

        for (name, g) in &state.gauges {
            let pname = prometheus_name(name);
            writeln!(out, "# TYPE {pname} gauge").unwrap();
            if g.volatile {
                writeln!(out, "# CLASS {pname} volatile").unwrap();
            }
            let value = if no_timings && g.volatile { 0 } else { g.value };
            writeln!(out, "{pname} {value}").unwrap();
        }

        for (name, h) in &state.histograms {
            let pname = prometheus_name(name);
            let zero = no_timings && h.volatile;
            writeln!(out, "# TYPE {pname} histogram").unwrap();
            if h.volatile {
                writeln!(out, "# CLASS {pname} volatile").unwrap();
            }
            let mut running = 0u64;
            if !zero {
                for (b, &count) in h.counts.iter().enumerate() {
                    if count == 0 || b >= POW2_BUCKET_BOUNDS.len() {
                        continue; // overflow folds into +Inf below
                    }
                    running += count;
                    writeln!(
                        out,
                        "{pname}_bucket{{le=\"{}\"}} {running}",
                        POW2_BUCKET_BOUNDS[b]
                    )
                    .unwrap();
                }
            }
            let total = render_u64(zero, h.count);
            writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {total}").unwrap();
            writeln!(out, "{pname}_sum {}", render_u64(zero, h.sum)).unwrap();
            writeln!(out, "{pname}_count {total}").unwrap();
        }

        for (name, cell) in &state.hdr {
            let pname = prometheus_name(name);
            let zero = no_timings && cell.volatile;
            writeln!(out, "# TYPE {pname} histogram").unwrap();
            if cell.volatile {
                writeln!(out, "# CLASS {pname} volatile").unwrap();
            }
            let mut running = 0u64;
            if !zero {
                for (upper, count) in cell.hist.buckets() {
                    running += count;
                    writeln!(out, "{pname}_bucket{{le=\"{upper}\"}} {running}").unwrap();
                }
            }
            let total = render_u64(zero, cell.hist.count());
            writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {total}").unwrap();
            writeln!(out, "{pname}_sum {}", render_u64(zero, cell.hist.sum())).unwrap();
            writeln!(out, "{pname}_count {total}").unwrap();
        }

        for (path, s) in &state.spans {
            let pname = prometheus_name(path);
            writeln!(out, "# TYPE {pname}_calls counter").unwrap();
            writeln!(out, "{pname}_calls {}", s.calls).unwrap();
            // Wall-clock span time is inherently volatile.
            writeln!(out, "# TYPE {pname}_ns counter").unwrap();
            writeln!(out, "# CLASS {pname}_ns volatile").unwrap();
            writeln!(out, "{pname}_ns {}", render_u64(true, s.total_ns)).unwrap();
        }

        out
    }
}

/// Maps a metric name onto the Prometheus identifier charset
/// `[a-zA-Z0-9_:]`: every other character (dots, slashes, dashes)
/// becomes `_`, and a leading digit gains a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let valid = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { ch } else { '_' });
    }
    out
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline per the text exposition format.
pub fn prometheus_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON string literal (quotes + escapes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(POW2_BUCKET_BOUNDS[0], 1);
        assert_eq!(POW2_BUCKET_BOUNDS[10], 1024);
        assert_eq!(POW2_BUCKET_BOUNDS[40], 1u64 << 40);
    }

    #[test]
    fn histogram_buckets_values() {
        let r = Registry::new();
        r.histogram_observe("h", 0, false); // <= 1
        r.histogram_observe("h", 1, false); // <= 1
        r.histogram_observe("h", 2, false); // <= 2
        r.histogram_observe("h", 3, false); // <= 4
        r.histogram_observe("h", u64::MAX, false); // overflow
        let json = r.snapshot_json(false);
        assert!(json.contains("[1, 2]"), "two obs in first bucket: {json}");
        assert!(json.contains("[2, 1]"));
        assert!(json.contains("[4, 1]"));
        assert!(json.contains("[0, 1]"), "overflow sentinel bound 0");
        assert!(json.contains("\"count\": 5"));
    }

    #[test]
    fn empty_registry_renders_valid_skeleton() {
        let json = Registry::new().snapshot_json(true);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn counter_value_reads_back() {
        let r = Registry::new();
        r.counter_add("x", 3, false);
        r.counter_add("x", 4, false);
        assert_eq!(r.counter_value("x"), 7);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn hdr_section_renders_quantiles_and_buckets() {
        let r = Registry::new();
        for v in [1u64, 2, 3, 81] {
            r.hdr_observe("lat", v, false);
        }
        let json = r.snapshot_json(false);
        assert!(json.contains("\"hdr\": {"), "{json}");
        assert!(json.contains("\"p99\": 81"), "{json}");
        assert!(json.contains("[81, 1]"), "{json}");
        assert_eq!(r.hdr_quantile("lat", 0.5), Some(2));
        assert_eq!(r.hdr_quantile("missing", 0.5), None);
    }

    #[test]
    fn hdr_volatile_zeroes_under_no_timings() {
        let r = Registry::new();
        r.hdr_observe("vlat", 100, true);
        let json = r.snapshot_json(true);
        assert!(
            json.contains("\"vlat\": {\"count\": 0, \"sum\": 0"),
            "{json}"
        );
        assert!(json.contains("\"buckets\": []"), "{json}");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("serve.latency.p99"), "serve_latency_p99");
        assert_eq!(prometheus_name("a/b-c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn prometheus_escape_handles_backslash_quote_newline() {
        assert_eq!(prometheus_escape(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(prometheus_escape("line\nbreak"), "line\\nbreak");
        assert_eq!(prometheus_escape("plain"), "plain");
    }

    #[test]
    fn prometheus_exposition_orders_sections_and_flags_volatile() {
        let r = Registry::new();
        r.counter_add("b.count", 2, false);
        r.counter_add("a.count", 1, true);
        r.gauge_set("depth", 7, false);
        r.histogram_observe("h.sizes", 3, false);
        r.hdr_observe("lat", 81, false);
        r.span_record("outer/inner", 999);
        let text = r.render_prometheus(false);
        // Lexicographic within a section, counters before gauges before
        // histograms before hdr before spans.
        let order = [
            "a_count 1",
            "b_count 2",
            "depth 7",
            "h_sizes_count 1",
            "lat_count 1",
            "outer_inner_calls 1",
        ];
        let mut at = 0;
        for needle in order {
            let pos = text[at..]
                .find(needle)
                .unwrap_or_else(|| panic!("{needle} missing or out of order:\n{text}"));
            at += pos;
        }
        assert!(text.contains("# CLASS a_count volatile"), "{text}");
        assert!(
            !text.contains("# CLASS b_count"),
            "deterministic metrics carry no CLASS line:\n{text}"
        );
        assert!(text.contains("# TYPE depth gauge"), "{text}");
        assert!(text.contains("# CLASS outer_inner_ns volatile"), "{text}");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_inf_matches_count() {
        let r = Registry::new();
        for v in [1u64, 1, 2, 3, 100, u64::MAX] {
            r.histogram_observe("h", v, false);
            r.hdr_observe("lat", v, false);
        }
        let text = r.render_prometheus(false);
        for metric in ["h", "lat"] {
            let mut last = 0u64;
            let mut inf = None;
            let mut count = None;
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix(&format!("{metric}_bucket{{le=\"")) {
                    let (le, tail) = rest.split_once("\"} ").expect("bucket line shape");
                    let v: u64 = tail.trim().parse().expect("bucket count");
                    if le == "+Inf" {
                        inf = Some(v);
                    } else {
                        assert!(v >= last, "non-monotone cumulative bucket in {metric}");
                        last = v;
                    }
                } else if let Some(rest) = line.strip_prefix(&format!("{metric}_count ")) {
                    count = Some(rest.trim().parse::<u64>().expect("count"));
                }
            }
            assert_eq!(inf, Some(6), "{metric} +Inf must cover overflow too");
            assert_eq!(inf, count, "{metric} le=+Inf must equal _count");
        }
    }

    #[test]
    fn prometheus_no_timings_is_byte_identical_across_interleavings() {
        // Record the same multiset of metrics from different thread
        // interleavings; with no_timings the exposition must come out
        // byte-identical (volatile values zeroed, order lexicographic).
        let run = |threads: usize| {
            let r = Registry::new();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let r = r.clone();
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            if i % threads as u64 == t as u64 {
                                r.counter_add("det", 1, false);
                                r.counter_add("vol", i, true);
                                r.hdr_observe("lat", i, false);
                                r.histogram_observe("sizes", i, false);
                            }
                        }
                    });
                }
            });
            r.render_prometheus(true)
        };
        let reference = run(1);
        assert_eq!(reference, run(2));
        assert_eq!(reference, run(8));
        assert!(reference.contains("vol 0"), "{reference}");
        assert!(reference.contains("det 100"), "{reference}");
    }
}

//! Metric storage and deterministic JSON export.
//!
//! All state lives behind one mutex in `BTreeMap`s, so export order is
//! the lexicographic key order regardless of insertion or thread
//! interleaving. Exported values are integers only — no floats — so the
//! rendered JSON is byte-stable.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Upper bounds of the fixed histogram bucket layout: powers of two from
/// 1 to 2^40, plus an implicit overflow bucket. Fixed so histograms from
/// different runs always have comparable shapes.
pub const POW2_BUCKET_BOUNDS: [u64; 41] = {
    let mut bounds = [0u64; 41];
    let mut i = 0;
    while i < 41 {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

#[derive(Clone, Default)]
struct Counter {
    value: u64,
    volatile: bool,
}

#[derive(Clone, Default)]
struct Gauge {
    value: i64,
    volatile: bool,
}

#[derive(Clone)]
struct Histogram {
    /// `counts[i]` is the number of observations `<= POW2_BUCKET_BOUNDS[i]`
    /// and greater than the previous bound; the last slot is overflow.
    counts: [u64; POW2_BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
    volatile: bool,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; POW2_BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            volatile: false,
        }
    }
}

#[derive(Clone, Default)]
struct Span {
    calls: u64,
    total_ns: u64,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Span>,
}

/// A metric registry. Cheap to clone (shared handle); safe to record
/// into from many threads at once.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<State>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    pub(crate) fn counter_add(&self, name: &str, delta: u64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.counters.entry(name.to_string()).or_default();
        cell.value = cell.value.saturating_add(delta);
        cell.volatile |= volatile;
    }

    pub(crate) fn gauge_set(&self, name: &str, value: i64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.gauges.entry(name.to_string()).or_default();
        cell.value = value;
        cell.volatile |= volatile;
    }

    pub(crate) fn histogram_observe(&self, name: &str, value: u64, volatile: bool) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.histograms.entry(name.to_string()).or_default();
        let bucket = POW2_BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(POW2_BUCKET_BOUNDS.len());
        cell.counts[bucket] += 1;
        cell.count += 1;
        cell.sum = cell.sum.saturating_add(value);
        cell.volatile |= volatile;
    }

    pub(crate) fn span_record(&self, path: &str, elapsed_ns: u64) {
        let mut state = self.inner.lock().unwrap();
        let cell = state.spans.entry(path.to_string()).or_default();
        cell.calls += 1;
        cell.total_ns = cell.total_ns.saturating_add(elapsed_ns);
    }

    /// Reads a counter's current value (0 if never recorded). For tests
    /// and in-process assertions; exports should go through snapshots.
    pub fn counter_value(&self, name: &str) -> u64 {
        let state = self.inner.lock().unwrap();
        state.counters.get(name).map_or(0, |c| c.value)
    }

    /// Renders the registry as pretty-printed JSON with stable key order.
    ///
    /// With `no_timings`, every volatile field — span durations, volatile
    /// counters/gauges/histograms — renders as zero while its key stays
    /// in place, so two snapshots from runs that differ only in timing or
    /// worker scheduling are byte-identical.
    pub fn snapshot_json(&self, no_timings: bool) -> String {
        self.snapshot_json_indented(no_timings, 0)
    }

    /// Like [`Registry::snapshot_json`] but indented `level` steps (two
    /// spaces each) past the first line, for embedding inside a larger
    /// hand-built JSON document.
    pub fn snapshot_json_indented(&self, no_timings: bool, level: usize) -> String {
        let state = self.inner.lock().unwrap();
        let pad = "  ".repeat(level);
        let mut out = String::new();
        out.push_str("{\n");

        let render_u64 = |vol: bool, v: u64| if no_timings && vol { 0 } else { v };

        write!(out, "{pad}  \"counters\": {{").unwrap();
        for (i, (name, c)) in state.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n{pad}    {}: {}",
                json_string(name),
                render_u64(c.volatile, c.value)
            )
            .unwrap();
        }
        if state.counters.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"gauges\": {{").unwrap();
        for (i, (name, g)) in state.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let value = if no_timings && g.volatile { 0 } else { g.value };
            write!(out, "{sep}\n{pad}    {}: {}", json_string(name), value).unwrap();
        }
        if state.gauges.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"histograms\": {{").unwrap();
        for (i, (name, h)) in state.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let zero = no_timings && h.volatile;
            write!(
                out,
                "{sep}\n{pad}    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_string(name),
                render_u64(zero, h.count),
                render_u64(zero, h.sum)
            )
            .unwrap();
            if !zero {
                // Only non-empty buckets, as [upper_bound, count] pairs;
                // the overflow bucket uses bound 0 as a sentinel.
                let mut first = true;
                for (b, &count) in h.counts.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let bound = POW2_BUCKET_BOUNDS.get(b).copied().unwrap_or(0);
                    if !first {
                        out.push_str(", ");
                    }
                    write!(out, "[{bound}, {count}]").unwrap();
                    first = false;
                }
            }
            out.push_str("]}");
        }
        if state.histograms.is_empty() {
            out.push_str("},\n");
        } else {
            write!(out, "\n{pad}  }},\n").unwrap();
        }

        write!(out, "{pad}  \"spans\": {{").unwrap();
        for (i, (path, s)) in state.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                out,
                "{sep}\n{pad}    {}: {{\"calls\": {}, \"total_ns\": {}}}",
                json_string(path),
                s.calls,
                render_u64(true, s.total_ns)
            )
            .unwrap();
        }
        if state.spans.is_empty() {
            out.push('}');
        } else {
            write!(out, "\n{pad}  }}").unwrap();
        }

        write!(out, "\n{pad}}}").unwrap();
        out
    }
}

/// Renders a JSON string literal (quotes + escapes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(POW2_BUCKET_BOUNDS[0], 1);
        assert_eq!(POW2_BUCKET_BOUNDS[10], 1024);
        assert_eq!(POW2_BUCKET_BOUNDS[40], 1u64 << 40);
    }

    #[test]
    fn histogram_buckets_values() {
        let r = Registry::new();
        r.histogram_observe("h", 0, false); // <= 1
        r.histogram_observe("h", 1, false); // <= 1
        r.histogram_observe("h", 2, false); // <= 2
        r.histogram_observe("h", 3, false); // <= 4
        r.histogram_observe("h", u64::MAX, false); // overflow
        let json = r.snapshot_json(false);
        assert!(json.contains("[1, 2]"), "two obs in first bucket: {json}");
        assert!(json.contains("[2, 1]"));
        assert!(json.contains("[4, 1]"));
        assert!(json.contains("[0, 1]"), "overflow sentinel bound 0");
        assert!(json.contains("\"count\": 5"));
    }

    #[test]
    fn empty_registry_renders_valid_skeleton() {
        let json = Registry::new().snapshot_json(true);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"spans\": {}"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn counter_value_reads_back() {
        let r = Registry::new();
        r.counter_add("x", 3, false);
        r.counter_add("x", 4, false);
        assert_eq!(r.counter_value("x"), 7);
        assert_eq!(r.counter_value("missing"), 0);
    }
}

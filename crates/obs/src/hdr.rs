//! Log-linear (HDR-style) latency histogram with deterministic bucket
//! boundaries and exact quantile accessors.
//!
//! Values `0..64` get singleton buckets (exact). Above that, each
//! power-of-two octave is split into 32 equal-width sub-buckets, so the
//! relative quantization error is bounded by 1/32 (~3.1%) everywhere.
//! Bucket boundaries are a pure function of the value — no configuration,
//! no floating point — so two histograms fed the same multiset of values
//! are bit-identical regardless of insertion order or thread count.
//!
//! A quantile is reported as the **highest equivalent value** of the
//! bucket where the cumulative count first reaches `ceil(q * count)`,
//! clamped to the exact observed maximum. For values below 64 (one value
//! per bucket) every quantile is exact; the serve replay's virtual-time
//! p99 lands in this regime at golden scale, which is why the golden p99
//! line survives the switch from the sort-based percentile unchanged.

/// Number of singleton buckets covering values `0..SUB_BUCKETS`.
const SUB_BUCKETS: u64 = 64;
/// Sub-buckets per octave above the singleton range.
const OCTAVE_SLOTS: u64 = 32;

/// Index of the bucket holding `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - u64::leading_zeros(value) as u64; // >= 6
    let shift = msb - 5; // bucket width is 2^shift
    let offset = (value >> shift) - OCTAVE_SLOTS; // in 0..32
    (SUB_BUCKETS + (shift - 1) * OCTAVE_SLOTS + offset) as usize
}

/// Highest value mapping to bucket `index` (inclusive upper bound).
#[inline]
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let shift = (index - SUB_BUCKETS) / OCTAVE_SLOTS + 1;
    let offset = (index - SUB_BUCKETS) % OCTAVE_SLOTS;
    // Split base + width so the top bucket (upper == u64::MAX) cannot
    // overflow the shift.
    ((OCTAVE_SLOTS + offset) << shift) + ((1u64 << shift) - 1)
}

/// A deterministic log-linear histogram of `u64` samples.
///
/// Storage grows lazily to the highest recorded bucket, so an empty or
/// low-range histogram stays small enough to embed in per-request stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogLinearHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LogLinearHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let index = bucket_index(value);
        if self.counts.len() <= index {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the highest equivalent
    /// value of the bucket where the cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact observed maximum.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // ceil without floating-point drift for representable counts.
        let target = ((clamped * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (see [`Self::quantile`]).
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order — the exposition/rendering view.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(index, &c)| (bucket_upper(index), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_deterministic_and_cover_u64() {
        // Singleton range: one value per bucket.
        for v in 0..64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Every value maps into a bucket whose range contains it, and
        // uppers are strictly increasing with the index.
        let probes = [
            64,
            65,
            80,
            81,
            127,
            128,
            1000,
            4096,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ];
        for &v in &probes {
            let index = bucket_index(v);
            assert!(bucket_upper(index) >= v, "upper({index}) < {v}");
            if index > 0 {
                assert!(bucket_upper(index - 1) < v, "lower bound misses {v}");
            }
        }
        for index in 1..bucket_index(u64::MAX) {
            assert!(bucket_upper(index) > bucket_upper(index - 1));
        }
    }

    #[test]
    fn relative_error_is_bounded_by_one_thirty_second() {
        for &v in &[64u64, 100, 999, 12_345, 1 << 30, u64::MAX / 7] {
            let upper = bucket_upper(bucket_index(v));
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "error {err} too large for {v}");
        }
    }

    #[test]
    fn quantiles_are_exact_in_the_singleton_range() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=100u64 {
            // values 1..=63 exact; keep all below 64 to stay exact
            h.record(v % 64);
        }
        // Cross-check against a sorted vector using the same "first
        // index where cumulative >= ceil(q*n)" definition.
        let mut sorted: Vec<u64> = (1..=100u64).map(|v| v % 64).collect();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(h.quantile(q), sorted[rank - 1], "q={q}");
        }
    }

    #[test]
    fn quantile_of_golden_p99_value_is_exact() {
        // The serve-replay chaos golden pins p99 = 81 virtual ms; 81 is
        // the inclusive upper bound of its bucket {80, 81}, so the
        // histogram reports it exactly.
        assert_eq!(bucket_upper(bucket_index(81)), 81);
        let mut h = LogLinearHistogram::new();
        for _ in 0..98 {
            h.record(5);
        }
        h.record(81);
        h.record(81);
        assert_eq!(h.p99(), 81);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let values = [0u64, 1, 63, 64, 81, 1000, 1 << 30];
        let mut whole = LogLinearHistogram::new();
        let mut left = LogLinearHistogram::new();
        let mut right = LogLinearHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn insertion_order_does_not_change_the_histogram() {
        let mut forward = LogLinearHistogram::new();
        let mut backward = LogLinearHistogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * 37 % 4096).collect();
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            backward.record(v);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count(), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let mut h = LogLinearHistogram::new();
        h.record(1 << 20); // wide bucket up here
        assert_eq!(h.p999(), 1 << 20);
        assert_eq!(h.max(), 1 << 20);
    }
}

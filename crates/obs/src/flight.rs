//! Flight recorder: a bounded ring of recent structured events, dumped
//! to a file when something goes wrong.
//!
//! Where the [`Registry`](crate::Registry) aggregates and the
//! [`Tracer`](crate::Tracer) timelines, the flight recorder keeps the
//! *last N things that happened* — one JSON object per event — so a
//! handler panic or a FAILing report can dump the immediate run-up to
//! the failure without the cost of always-on full logging. Events are
//! sequence-numbered; evicted events are counted so a dump says how much
//! history was lost.
//!
//! The dump format is JSON Lines: a header object
//! (`{"flight_recorder": ...}`) followed by the buffered events oldest
//! first. Field values are strings — this is a black-box stream for
//! humans and `jq`, not a metrics surface.

use crate::registry::json_string;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough run-up to diagnose a panic without
/// holding a whole replay in memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

struct FlightState {
    capacity: usize,
    seq: u64,
    dropped: u64,
    events: VecDeque<String>,
}

/// A shared handle to a bounded ring of structured events. Cheap to
/// clone; safe to record into from many threads.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightState>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder whose ring holds at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightState {
                capacity: capacity.max(1),
                seq: 0,
                dropped: 0,
                events: VecDeque::new(),
            })),
        }
    }

    /// Appends one event of kind `kind` with string fields, evicting the
    /// oldest event if the ring is full.
    pub fn record(&self, kind: &str, fields: &[(&str, String)]) {
        let mut line = String::new();
        let mut state = self.inner.lock().unwrap();
        state.seq += 1;
        write!(
            line,
            "{{\"seq\": {}, \"kind\": {}",
            state.seq,
            json_string(kind)
        )
        .unwrap();
        for (key, value) in fields {
            write!(line, ", {}: {}", json_string(key), json_string(value)).unwrap();
        }
        line.push('}');
        if state.events.len() >= state.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(line);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the ring as JSON Lines: a header object followed by the
    /// buffered events, oldest first.
    pub fn dump(&self) -> String {
        let state = self.inner.lock().unwrap();
        let mut out = String::new();
        writeln!(
            out,
            "{{\"flight_recorder\": {{\"events\": {}, \"dropped\": {}, \"capacity\": {}}}}}",
            state.events.len(),
            state.dropped,
            state.capacity
        )
        .unwrap();
        for line in &state.events {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes [`FlightRecorder::dump`] to `path`, creating parent
    /// directories as needed.
    pub fn dump_to_file(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sequence_numbered_json_lines() {
        let recorder = FlightRecorder::new(8);
        recorder.record("request", &[("status", "200".to_string())]);
        recorder.record(
            "panic",
            &[("route", "/app".to_string()), ("index", "3".to_string())],
        );
        let dump = recorder.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 events: {dump}");
        assert!(lines[0].contains("\"events\": 2"));
        assert!(lines[1].contains("\"seq\": 1"));
        assert!(lines[2].contains("\"kind\": \"panic\""));
        assert!(lines[2].contains("\"route\": \"/app\""));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_dropped() {
        let recorder = FlightRecorder::new(2);
        for i in 0..5 {
            recorder.record("e", &[("i", i.to_string())]);
        }
        assert_eq!(recorder.len(), 2);
        let dump = recorder.dump();
        assert!(dump.contains("\"dropped\": 3"), "{dump}");
        assert!(!dump.contains("\"i\": \"0\""), "oldest gone: {dump}");
        assert!(dump.contains("\"i\": \"4\""), "{dump}");
    }

    #[test]
    fn dump_to_file_round_trips() {
        let recorder = FlightRecorder::default();
        recorder.record("row", &[("grade", "FAIL".to_string())]);
        let path = std::env::temp_dir().join(format!("flight-test-{}.jsonl", std::process::id()));
        recorder.dump_to_file(&path).expect("write dump");
        let read = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(read, recorder.dump());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escapes_field_values() {
        let recorder = FlightRecorder::default();
        recorder.record("msg", &[("text", "a\"b\nc".to_string())]);
        let dump = recorder.dump();
        assert!(dump.contains("\"a\\\"b\\nc\""), "{dump}");
    }
}

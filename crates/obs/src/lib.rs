//! Deterministic observability for the planet-apps workspace.
//!
//! Every other crate records what it does — retries, cache hits, grid
//! candidates pruned, span timings — through this facade. Design rules:
//!
//! * **Zero dependencies.** Only `std`; the JSON export is hand-rolled.
//! * **Scoped, not global.** Nothing is recorded unless a [`Registry`]
//!   is installed on the current thread ([`with_registry`]); with no
//!   registry every call is a no-op, so library hot paths stay free when
//!   nobody is listening, and tests never leak metrics into each other.
//!   The active context (registry + tracer + open span path + track)
//!   can be captured and re-entered on worker threads ([`capture`] /
//!   [`Context::run`]), which is how `appstore_core::par_map_indexed`
//!   makes metric attribution identical for every thread count.
//! * **Deterministic export.** [`Registry::snapshot_json`] renders every
//!   metric in stable (sorted) key order. Each metric carries a stability
//!   class: *deterministic* values are functions of the seeds and inputs
//!   alone, while *volatile* values (durations, per-worker task counts,
//!   per-worker cache hit rates) legitimately vary with the machine or
//!   thread count. Snapshots taken in no-timings mode zero every volatile
//!   field, making them **byte-comparable** across `--threads N` and
//!   across hosts — the contract the golden-figure regression suite pins.
//!
//! Metric kinds: monotone counters ([`counter`]), last-write gauges
//! ([`gauge`]), histograms with a fixed power-of-two bucket layout
//! ([`observe`]), and nestable timed spans ([`span`]) whose call counts
//! are deterministic while their accumulated nanoseconds are volatile.
//!
//! Beyond aggregate metrics, a [`Tracer`] (installed with
//! [`with_tracer`], orthogonal to the registry) records an event-level
//! timeline: span begin/end pairs, [`instant`] markers, and
//! deterministic counter samples, attributed to per-task *tracks* (see
//! [`with_track`]) whose identity is stable across thread counts. The
//! [`trace`] module documents the model and the two exporters (Chrome
//! trace-event JSON and collapsed-stack text). All metric and span names
//! live in [`names`] as constants so misspellings fail to compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hdr;
pub mod names;
mod registry;
pub mod trace;

pub use flight::FlightRecorder;
pub use hdr::LogLinearHistogram;
pub use registry::{prometheus_escape, prometheus_name, Registry, POW2_BUCKET_BOUNDS};
pub use trace::{TimeBase, Tracer, DEFAULT_TRACE_CAPACITY};

use std::cell::RefCell;

thread_local! {
    static CURRENT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// The active collection context of a thread: the registry metrics go
/// to (if any), the tracer events go to (if any), the stack of open
/// span names (joined with `/` to form the exported span path), and the
/// current track — the path of task indices identifying this logical
/// thread of execution in a trace.
#[derive(Clone)]
pub struct Context {
    registry: Option<Registry>,
    tracer: Option<Tracer>,
    span_path: Vec<String>,
    track: Vec<u64>,
}

impl Context {
    fn empty() -> Context {
        Context {
            registry: None,
            tracer: None,
            span_path: Vec::new(),
            track: Vec::new(),
        }
    }

    /// Runs `f` with this context installed on the current thread,
    /// restoring whatever was installed before once `f` returns.
    ///
    /// Used to carry the caller's context onto worker threads so a
    /// parallel run attributes metrics exactly like a sequential one.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = ContextGuard::install(Some(self.clone()));
        f()
    }
}

/// Restores the previous thread context on drop (panic-safe).
struct ContextGuard {
    previous: Option<Context>,
}

impl ContextGuard {
    fn install(next: Option<Context>) -> ContextGuard {
        let previous = CURRENT.with(|c| c.replace(next));
        ContextGuard { previous }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.previous.take();
        });
    }
}

/// Runs `f` with `registry` collecting on the current thread (fresh span
/// path), restoring the previous context afterwards. Nestable: the inner
/// registry shadows the outer one for the duration of `f`. An installed
/// [`Tracer`] and the current track are inherited — tracing is
/// orthogonal to metric scoping.
pub fn with_registry<R>(registry: &Registry, f: impl FnOnce() -> R) -> R {
    let (tracer, track) = CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.tracer.clone(), ctx.track.clone()))
            .unwrap_or((None, Vec::new()))
    });
    let _guard = ContextGuard::install(Some(Context {
        registry: Some(registry.clone()),
        tracer,
        span_path: Vec::new(),
        track,
    }));
    f()
}

/// Runs `f` with `tracer` collecting trace events on the current thread,
/// restoring the previous context afterwards. The registry, span path,
/// and track of an already-installed context are inherited, so a tracer
/// can wrap a whole pipeline while registries come and go inside it.
pub fn with_tracer<R>(tracer: &Tracer, f: impl FnOnce() -> R) -> R {
    let mut ctx = capture().unwrap_or_else(Context::empty);
    ctx.tracer = Some(tracer.clone());
    let _guard = ContextGuard::install(Some(ctx));
    f()
}

/// Captures the current thread's context (registry + tracer + open span
/// path + track) for re-entry on another thread, or `None` when nothing
/// is installed.
pub fn capture() -> Option<Context> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when a registry is installed on the current thread.
pub fn enabled() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| ctx.registry.is_some())
    })
}

fn with_current(f: impl FnOnce(&Registry)) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if let Some(registry) = &ctx.registry {
                f(registry);
            }
        }
    });
}

/// The registry installed on the current thread, if any — a cheap
/// shared handle. Lets long-lived components (like the serve telemetry
/// endpoints) capture the registry once and render snapshots from other
/// threads later.
pub fn current_registry() -> Option<Registry> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(|ctx| ctx.registry.clone()))
}

/// The names-drift guard: true when recording under `name` may proceed.
///
/// Undeclared names (not in [`names::ALL_METRICS`], not a declared
/// `cache.*` family member, not `test.*`) panic in debug/test builds so
/// drift is caught at the call site; in release builds the emission is
/// dropped and the volatile counter [`names::OBS_UNDECLARED`] is
/// incremented instead, keeping production snapshots clean.
fn declared(name: &str, registry: Option<&Registry>) -> bool {
    if names::is_declared_metric(name) {
        return true;
    }
    if cfg!(debug_assertions) {
        panic!(
            "undeclared metric name {name:?} — declare it in appstore_obs::names \
             (unit tests may use the `test.` prefix)"
        );
    }
    if let Some(registry) = registry {
        registry.counter_add(names::OBS_UNDECLARED, 1, true);
    }
    false
}

/// Adds `delta` to the deterministic counter `name`. With a tracer
/// installed the increment is also recorded as a timeline counter
/// sample on the current track.
pub fn counter(name: &str, delta: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if (ctx.registry.is_some() || ctx.tracer.is_some())
                && !declared(name, ctx.registry.as_ref())
            {
                return;
            }
            if let Some(registry) = &ctx.registry {
                registry.counter_add(name, delta, false);
            }
            if let Some(tracer) = &ctx.tracer {
                tracer.counter_sample(&ctx.track, name, delta);
            }
        }
    });
}

/// Adds `delta` to the volatile counter `name` (zeroed in no-timings
/// snapshots; use for values that depend on worker count or machine).
/// Never traced: its call placement is scheduler-dependent.
pub fn counter_volatile(name: &str, delta: u64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.counter_add(name, delta, true);
        }
    });
}

/// Sets the deterministic gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: i64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.gauge_set(name, value, false);
        }
    });
}

/// Sets the volatile gauge `name` to `value` (zeroed in no-timings
/// snapshots).
pub fn gauge_volatile(name: &str, value: i64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.gauge_set(name, value, true);
        }
    });
}

/// Records `value` into the deterministic histogram `name` (fixed
/// power-of-two bucket layout, see [`POW2_BUCKET_BOUNDS`]).
pub fn observe(name: &str, value: u64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.histogram_observe(name, value, false);
        }
    });
}

/// Records `value` into the volatile histogram `name` (all fields zeroed
/// in no-timings snapshots).
pub fn observe_volatile(name: &str, value: u64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.histogram_observe(name, value, true);
        }
    });
}

/// Records `value` into the deterministic log-linear histogram `name`
/// (HDR-style buckets, see [`LogLinearHistogram`]) with exact
/// p50/p90/p99/p999 accessors in snapshots and via
/// [`Registry::hdr_quantile`].
pub fn observe_hdr(name: &str, value: u64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.hdr_observe(name, value, false);
        }
    });
}

/// Records `value` into the volatile log-linear histogram `name` (all
/// fields zeroed in no-timings snapshots).
pub fn observe_hdr_volatile(name: &str, value: u64) {
    with_current(|r| {
        if declared(name, Some(r)) {
            r.hdr_observe(name, value, true);
        }
    });
}

/// Records an instant event named `name` on the current track. Trace
/// timeline only — instants never appear in metric snapshots, so they
/// are free to mark high-frequency moments (a screened candidate, a
/// breaker trip) without touching the golden metric surface.
pub fn instant(name: &str) {
    instant_args(name, &[]);
}

/// Like [`instant`], but annotates the event with key/value args that
/// render into the Chrome export's `args` object. The deterministic
/// collapsed export ignores args, so annotating never perturbs the
/// logical-timestamp golden surface.
pub fn instant_args(name: &str, args: &[(&str, &str)]) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if let Some(tracer) = &ctx.tracer {
                tracer.instant_event_args(&ctx.track, name, args);
            }
        }
    });
}

/// Labels the current track in trace exports (e.g. with an experiment
/// id or store name). Last write wins; trace timeline only.
pub fn label_track(name: &str) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            if let Some(tracer) = &ctx.tracer {
                tracer.label(&ctx.track, name);
            }
        }
    });
}

/// Runs `f` on the child track `index` of the current track.
///
/// `par_map_indexed` wraps every task in this with the task's input
/// index, so each task's trace events land on a track whose identity —
/// the path of task indices from the root — is a pure function of the
/// input, never of the scheduler. On entry the spans currently open are
/// replayed onto the child track as *synthetic* begin events (closed
/// again on exit), so child stacks stay rooted under their parent's
/// frames in flame graphs; synthetic frames carry no logical weight.
///
/// With no context installed this is a plain call to `f`.
pub fn with_track<R>(index: u64, f: impl FnOnce() -> R) -> R {
    let entered = CURRENT.with(|c| {
        let mut borrow = c.borrow_mut();
        match borrow.as_mut() {
            Some(ctx) => {
                ctx.track.push(index);
                if let Some(tracer) = &ctx.tracer {
                    for frame in &ctx.span_path {
                        tracer.begin(&ctx.track, frame, true);
                    }
                }
                Some(ctx.span_path.len())
            }
            None => None,
        }
    });
    match entered {
        None => f(),
        Some(frames) => {
            let _guard = TrackGuard { frames };
            f()
        }
    }
}

/// Pops the current track on drop (panic-safe), closing the synthetic
/// frames that rooted it.
struct TrackGuard {
    frames: usize,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            if let Some(ctx) = borrow.as_mut() {
                if let Some(tracer) = &ctx.tracer {
                    for frame in ctx.span_path[..self.frames].iter().rev() {
                        tracer.end(&ctx.track, frame, true);
                    }
                }
                ctx.track.pop();
            }
        });
    }
}

/// Runs `f` inside a timed span called `name`.
///
/// Spans nest: a span opened while another is running is exported under
/// the joined path (`outer/inner`). The span's call count is
/// deterministic; its accumulated wall-clock nanoseconds are volatile
/// and zeroed in no-timings snapshots. With a tracer installed the span
/// additionally emits begin/end timeline events on the current track.
/// With no registry or tracer installed, `f` runs untimed with zero
/// overhead.
pub fn span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    span_args(name, &[], f)
}

/// Like [`span`], but annotates the begin event with key/value args
/// that render into the Chrome export's `args` object (shed reasons,
/// degradation classes, deadline burn). The deterministic collapsed
/// export ignores args.
pub fn span_args<R>(name: &str, args: &[(&str, &str)], f: impl FnOnce() -> R) -> R {
    let entered = CURRENT.with(|c| {
        let mut borrow = c.borrow_mut();
        match borrow.as_mut() {
            Some(ctx) => {
                ctx.span_path.push(name.to_string());
                if let Some(tracer) = &ctx.tracer {
                    tracer.begin_args(&ctx.track, name, false, args);
                }
                true
            }
            None => false,
        }
    });
    if !entered {
        return f();
    }
    let span_guard = SpanGuard {
        started: std::time::Instant::now(),
    };
    let result = f();
    drop(span_guard); // records and pops the span, in drop order
    result
}

/// Closes the innermost span on drop, recording its duration — also on
/// unwind, so a panicking span still pops its path entry.
struct SpanGuard {
    started: std::time::Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            if let Some(ctx) = borrow.as_mut() {
                if let Some(registry) = &ctx.registry {
                    let path = ctx.span_path.join("/");
                    registry.span_record(&path, elapsed_ns);
                }
                let name = ctx.span_path.pop();
                if let (Some(tracer), Some(name)) = (&ctx.tracer, name) {
                    tracer.end(&ctx.track, &name, false);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_registry_means_no_op() {
        assert!(!enabled());
        counter("c", 1);
        gauge("g", 2);
        observe("h", 3);
        instant("i");
        label_track("t");
        let out = span("s", || 7);
        assert_eq!(out, 7);
        let tracked = with_track(3, || 11);
        assert_eq!(tracked, 11);
        assert!(capture().is_none());
    }

    #[test]
    fn counters_gauges_and_histograms_export_sorted() {
        let registry = Registry::new();
        with_registry(&registry, || {
            counter("test.b.count", 2);
            counter("test.a.count", 1);
            counter("test.b.count", 3);
            gauge("test.z.level", -4);
            observe("test.sizes", 5);
            observe("test.sizes", 100);
        });
        let json = registry.snapshot_json(false);
        let a = json.find("\"test.a.count\": 1").expect("test.a.count");
        let b = json.find("\"test.b.count\": 5").expect("test.b.count");
        assert!(a < b, "keys must sort");
        assert!(json.contains("\"test.z.level\": -4"));
        assert!(json.contains("\"test.sizes\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum\": 105"));
    }

    #[test]
    fn volatile_metrics_zero_under_no_timings() {
        let registry = Registry::new();
        with_registry(&registry, || {
            counter("test.det", 7);
            counter_volatile("test.vol", 9);
            gauge_volatile("test.vg", 11);
            observe_volatile("test.vh", 13);
            span("work", || {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        });
        let timed = registry.snapshot_json(false);
        assert!(timed.contains("\"test.vol\": 9"));
        let zeroed = registry.snapshot_json(true);
        assert!(zeroed.contains("\"test.det\": 7"), "deterministic survives");
        assert!(zeroed.contains("\"test.vol\": 0"), "volatile zeroed");
        assert!(zeroed.contains("\"test.vg\": 0"));
        assert!(zeroed.contains("\"calls\": 1"), "span calls survive");
        assert!(zeroed.contains("\"total_ns\": 0"), "span time zeroed");
        assert!(!zeroed.contains("\"total_ns\": 0,\n"), "stable tail");
    }

    #[test]
    fn no_timings_snapshot_is_stable_across_repeats() {
        let run = || {
            let registry = Registry::new();
            with_registry(&registry, || {
                span("outer", || {
                    span("inner", || {
                        counter("test.n", 3);
                    });
                });
                observe("test.h", 42);
            });
            registry.snapshot_json(true)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spans_nest_into_paths() {
        let registry = Registry::new();
        with_registry(&registry, || {
            span("outer", || {
                span("inner", || {});
            });
            span("outer", || {});
        });
        let json = registry.snapshot_json(true);
        assert!(json.contains("\"outer\""));
        assert!(json.contains("\"outer/inner\""));
    }

    #[test]
    fn capture_carries_registry_and_span_path_across_threads() {
        let registry = Registry::new();
        with_registry(&registry, || {
            span("job", || {
                let ctx = capture().expect("context installed");
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        ctx.run(|| {
                            span("task", || counter("test.done", 1));
                        });
                    });
                });
            });
        });
        let json = registry.snapshot_json(true);
        assert!(json.contains("\"job/task\""), "worker inherits span path");
        assert!(json.contains("\"test.done\": 1"));
    }

    #[test]
    fn nested_with_registry_shadows_outer() {
        let outer = Registry::new();
        let inner = Registry::new();
        with_registry(&outer, || {
            counter("test.outer.only", 1);
            with_registry(&inner, || counter("test.inner.only", 1));
            counter("test.outer.only", 1);
        });
        assert!(outer.snapshot_json(true).contains("\"test.outer.only\": 2"));
        assert!(!outer.snapshot_json(true).contains("inner.only"));
        assert!(inner.snapshot_json(true).contains("\"test.inner.only\": 1"));
    }

    #[test]
    fn snapshot_indent_embeds_cleanly() {
        let registry = Registry::new();
        with_registry(&registry, || counter("test.k", 1));
        let embedded = registry.snapshot_json_indented(true, 2);
        assert!(embedded.starts_with('{'));
        assert!(embedded.ends_with("    }"), "closing brace at level 2");
    }

    #[test]
    fn tracer_records_spans_instants_and_counter_samples() {
        let tracer = Tracer::new();
        with_tracer(&tracer, || {
            span("work", || {
                instant("mark");
                counter("test.n", 2);
            });
        });
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert_eq!(folded, "work 1\nwork;mark 1\nwork;test.n 1\n");
    }

    #[test]
    fn with_registry_inherits_tracer() {
        let tracer = Tracer::new();
        let registry = Registry::new();
        with_tracer(&tracer, || {
            with_registry(&registry, || {
                span("inside", || counter("test.c", 1));
            });
        });
        assert_eq!(registry.counter_value("test.c"), 1);
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert!(
            folded.contains("inside 1"),
            "trace crossed registry: {folded}"
        );
    }

    #[test]
    fn with_tracer_inherits_registry() {
        let tracer = Tracer::new();
        let registry = Registry::new();
        with_registry(&registry, || {
            with_tracer(&tracer, || counter("test.c", 5));
        });
        assert_eq!(registry.counter_value("test.c"), 5);
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn tracks_nest_and_root_synthetic_frames() {
        let tracer = Tracer::new();
        with_tracer(&tracer, || {
            span("batch", || {
                with_track(0, || {
                    span("item", || instant("tick"));
                });
                with_track(1, || instant("tock"));
            });
        });
        let folded = tracer.export_collapsed(TimeBase::Logical);
        // "batch" frames on child tracks are synthetic (weight only from
        // the parent's own begin); children nest underneath.
        assert_eq!(
            folded,
            "batch 1\nbatch;item 1\nbatch;item;tick 1\nbatch;tock 1\n"
        );
    }

    #[test]
    fn volatile_counters_are_not_traced() {
        let tracer = Tracer::new();
        let registry = Registry::new();
        with_tracer(&tracer, || {
            with_registry(&registry, || {
                counter_volatile("test.vol", 3);
                observe_volatile("test.h", 1);
                gauge("test.g", 2);
            });
        });
        assert!(tracer.is_empty(), "only deterministic counters trace");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn undeclared_metric_name_panics_in_debug() {
        let registry = Registry::new();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_registry(&registry, || counter("definitely.not.declared", 1));
        }));
        assert!(outcome.is_err(), "debug builds must panic on drift");
        // Declared and test-family names record normally.
        with_registry(&registry, || {
            counter(names::SERVE_REQUESTS, 1);
            counter("test.scratch", 2);
        });
        assert_eq!(registry.counter_value(names::SERVE_REQUESTS), 1);
        assert_eq!(registry.counter_value("test.scratch"), 2);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn undeclared_metric_name_counts_obs_undeclared_in_release() {
        let registry = Registry::new();
        with_registry(&registry, || {
            counter("definitely.not.declared", 1);
            observe("also.not.declared", 7);
        });
        assert_eq!(registry.counter_value("definitely.not.declared"), 0);
        assert_eq!(registry.counter_value(names::OBS_UNDECLARED), 2);
    }

    #[test]
    fn hdr_facade_records_into_registry() {
        let registry = Registry::new();
        with_registry(&registry, || {
            for v in [1u64, 2, 81] {
                observe_hdr("test.lat", v);
            }
            observe_hdr_volatile("test.vlat", 5);
        });
        assert_eq!(registry.hdr_quantile("test.lat", 0.99), Some(81));
        let zeroed = registry.snapshot_json(true);
        assert!(zeroed.contains("\"test.vlat\": {\"count\": 0"), "{zeroed}");
    }

    #[test]
    fn span_args_and_instant_args_annotate_chrome_only() {
        let tracer = Tracer::new();
        with_tracer(&tracer, || {
            span_args("req", &[("route", "/app")], || {
                instant_args("edge", &[("result", "stale")]);
            });
        });
        let chrome = tracer.export_chrome();
        assert!(chrome.contains("\"route\": \"/app\""), "{chrome}");
        assert!(chrome.contains("\"result\": \"stale\""), "{chrome}");
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert_eq!(folded, "req 1\nreq;edge 1\n");
    }

    #[test]
    fn current_registry_returns_installed_handle() {
        assert!(current_registry().is_none());
        let registry = Registry::new();
        let handle = with_registry(&registry, || current_registry().expect("installed"));
        handle.counter_add(names::SERVE_REQUESTS, 3, false);
        assert_eq!(registry.counter_value(names::SERVE_REQUESTS), 3);
    }

    #[test]
    fn track_identity_is_thread_count_invariant() {
        let run = |parallel: bool| {
            let tracer = Tracer::new();
            with_tracer(&tracer, || {
                span("job", || {
                    let ctx = capture().expect("installed");
                    if parallel {
                        std::thread::scope(|scope| {
                            for i in 0..4u64 {
                                let ctx = &ctx;
                                scope.spawn(move || {
                                    ctx.run(|| {
                                        with_track(i, || span("task", || instant("t")));
                                    });
                                });
                            }
                        });
                    } else {
                        for i in 0..4u64 {
                            with_track(i, || span("task", || instant("t")));
                        }
                    }
                });
            });
            tracer.export_collapsed(TimeBase::Logical)
        };
        assert_eq!(run(false), run(true));
    }
}

//! Deterministic observability for the planet-apps workspace.
//!
//! Every other crate records what it does — retries, cache hits, grid
//! candidates pruned, span timings — through this facade. Design rules:
//!
//! * **Zero dependencies.** Only `std`; the JSON export is hand-rolled.
//! * **Scoped, not global.** Nothing is recorded unless a [`Registry`]
//!   is installed on the current thread ([`with_registry`]); with no
//!   registry every call is a no-op, so library hot paths stay free when
//!   nobody is listening, and tests never leak metrics into each other.
//!   The active context (registry + open span path) can be captured and
//!   re-entered on worker threads ([`capture`] / [`Context::run`]), which
//!   is how `appstore_core::par_map_indexed` makes metric attribution
//!   identical for every thread count.
//! * **Deterministic export.** [`Registry::snapshot_json`] renders every
//!   metric in stable (sorted) key order. Each metric carries a stability
//!   class: *deterministic* values are functions of the seeds and inputs
//!   alone, while *volatile* values (durations, per-worker task counts,
//!   per-worker cache hit rates) legitimately vary with the machine or
//!   thread count. Snapshots taken in no-timings mode zero every volatile
//!   field, making them **byte-comparable** across `--threads N` and
//!   across hosts — the contract the golden-figure regression suite pins.
//!
//! Metric kinds: monotone counters ([`counter`]), last-write gauges
//! ([`gauge`]), histograms with a fixed power-of-two bucket layout
//! ([`observe`]), and nestable timed spans ([`span`]) whose call counts
//! are deterministic while their accumulated nanoseconds are volatile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub use registry::{Registry, POW2_BUCKET_BOUNDS};

use std::cell::RefCell;

thread_local! {
    static CURRENT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// The active collection context of a thread: the registry metrics go
/// to, plus the stack of open span names (joined with `/` to form the
/// exported span path).
#[derive(Clone)]
pub struct Context {
    registry: Registry,
    span_path: Vec<String>,
}

impl Context {
    /// Runs `f` with this context installed on the current thread,
    /// restoring whatever was installed before once `f` returns.
    ///
    /// Used to carry the caller's context onto worker threads so a
    /// parallel run attributes metrics exactly like a sequential one.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = ContextGuard::install(Some(self.clone()));
        f()
    }
}

/// Restores the previous thread context on drop (panic-safe).
struct ContextGuard {
    previous: Option<Context>,
}

impl ContextGuard {
    fn install(next: Option<Context>) -> ContextGuard {
        let previous = CURRENT.with(|c| c.replace(next));
        ContextGuard { previous }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.previous.take();
        });
    }
}

/// Runs `f` with `registry` collecting on the current thread (fresh span
/// path), restoring the previous context afterwards. Nestable: the inner
/// registry shadows the outer one for the duration of `f`.
pub fn with_registry<R>(registry: &Registry, f: impl FnOnce() -> R) -> R {
    let _guard = ContextGuard::install(Some(Context {
        registry: registry.clone(),
        span_path: Vec::new(),
    }));
    f()
}

/// Captures the current thread's context (registry + open span path) for
/// re-entry on another thread, or `None` when nothing is installed.
pub fn capture() -> Option<Context> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when a registry is installed on the current thread.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_current(f: impl FnOnce(&Registry)) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            f(&ctx.registry);
        }
    });
}

/// Adds `delta` to the deterministic counter `name`.
pub fn counter(name: &str, delta: u64) {
    with_current(|r| r.counter_add(name, delta, false));
}

/// Adds `delta` to the volatile counter `name` (zeroed in no-timings
/// snapshots; use for values that depend on worker count or machine).
pub fn counter_volatile(name: &str, delta: u64) {
    with_current(|r| r.counter_add(name, delta, true));
}

/// Sets the deterministic gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: i64) {
    with_current(|r| r.gauge_set(name, value, false));
}

/// Sets the volatile gauge `name` to `value` (zeroed in no-timings
/// snapshots).
pub fn gauge_volatile(name: &str, value: i64) {
    with_current(|r| r.gauge_set(name, value, true));
}

/// Records `value` into the deterministic histogram `name` (fixed
/// power-of-two bucket layout, see [`POW2_BUCKET_BOUNDS`]).
pub fn observe(name: &str, value: u64) {
    with_current(|r| r.histogram_observe(name, value, false));
}

/// Records `value` into the volatile histogram `name` (all fields zeroed
/// in no-timings snapshots).
pub fn observe_volatile(name: &str, value: u64) {
    with_current(|r| r.histogram_observe(name, value, true));
}

/// Runs `f` inside a timed span called `name`.
///
/// Spans nest: a span opened while another is running is exported under
/// the joined path (`outer/inner`). The span's call count is
/// deterministic; its accumulated wall-clock nanoseconds are volatile
/// and zeroed in no-timings snapshots. With no registry installed, `f`
/// runs untimed with zero overhead.
pub fn span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let entered = CURRENT.with(|c| {
        let mut borrow = c.borrow_mut();
        match borrow.as_mut() {
            Some(ctx) => {
                ctx.span_path.push(name.to_string());
                true
            }
            None => false,
        }
    });
    if !entered {
        return f();
    }
    let span_guard = SpanGuard {
        started: std::time::Instant::now(),
    };
    let result = f();
    drop(span_guard); // records and pops the span, in drop order
    result
}

/// Closes the innermost span on drop, recording its duration — also on
/// unwind, so a panicking span still pops its path entry.
struct SpanGuard {
    started: std::time::Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        CURRENT.with(|c| {
            let mut borrow = c.borrow_mut();
            if let Some(ctx) = borrow.as_mut() {
                let path = ctx.span_path.join("/");
                ctx.registry.span_record(&path, elapsed_ns);
                ctx.span_path.pop();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_registry_means_no_op() {
        assert!(!enabled());
        counter("c", 1);
        gauge("g", 2);
        observe("h", 3);
        let out = span("s", || 7);
        assert_eq!(out, 7);
        assert!(capture().is_none());
    }

    #[test]
    fn counters_gauges_and_histograms_export_sorted() {
        let registry = Registry::new();
        with_registry(&registry, || {
            counter("b.count", 2);
            counter("a.count", 1);
            counter("b.count", 3);
            gauge("z.level", -4);
            observe("sizes", 5);
            observe("sizes", 100);
        });
        let json = registry.snapshot_json(false);
        let a = json.find("\"a.count\": 1").expect("a.count");
        let b = json.find("\"b.count\": 5").expect("b.count");
        assert!(a < b, "keys must sort");
        assert!(json.contains("\"z.level\": -4"));
        assert!(json.contains("\"sizes\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum\": 105"));
    }

    #[test]
    fn volatile_metrics_zero_under_no_timings() {
        let registry = Registry::new();
        with_registry(&registry, || {
            counter("det", 7);
            counter_volatile("vol", 9);
            gauge_volatile("vg", 11);
            observe_volatile("vh", 13);
            span("work", || {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        });
        let timed = registry.snapshot_json(false);
        assert!(timed.contains("\"vol\": 9"));
        let zeroed = registry.snapshot_json(true);
        assert!(zeroed.contains("\"det\": 7"), "deterministic survives");
        assert!(zeroed.contains("\"vol\": 0"), "volatile zeroed");
        assert!(zeroed.contains("\"vg\": 0"));
        assert!(zeroed.contains("\"calls\": 1"), "span calls survive");
        assert!(zeroed.contains("\"total_ns\": 0"), "span time zeroed");
        assert!(!zeroed.contains("\"total_ns\": 0,\n"), "stable tail");
    }

    #[test]
    fn no_timings_snapshot_is_stable_across_repeats() {
        let run = || {
            let registry = Registry::new();
            with_registry(&registry, || {
                span("outer", || {
                    span("inner", || {
                        counter("n", 3);
                    });
                });
                observe("h", 42);
            });
            registry.snapshot_json(true)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spans_nest_into_paths() {
        let registry = Registry::new();
        with_registry(&registry, || {
            span("outer", || {
                span("inner", || {});
            });
            span("outer", || {});
        });
        let json = registry.snapshot_json(true);
        assert!(json.contains("\"outer\""));
        assert!(json.contains("\"outer/inner\""));
    }

    #[test]
    fn capture_carries_registry_and_span_path_across_threads() {
        let registry = Registry::new();
        with_registry(&registry, || {
            span("job", || {
                let ctx = capture().expect("context installed");
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        ctx.run(|| {
                            span("task", || counter("done", 1));
                        });
                    });
                });
            });
        });
        let json = registry.snapshot_json(true);
        assert!(json.contains("\"job/task\""), "worker inherits span path");
        assert!(json.contains("\"done\": 1"));
    }

    #[test]
    fn nested_with_registry_shadows_outer() {
        let outer = Registry::new();
        let inner = Registry::new();
        with_registry(&outer, || {
            counter("outer.only", 1);
            with_registry(&inner, || counter("inner.only", 1));
            counter("outer.only", 1);
        });
        assert!(outer.snapshot_json(true).contains("\"outer.only\": 2"));
        assert!(!outer.snapshot_json(true).contains("inner.only"));
        assert!(inner.snapshot_json(true).contains("\"inner.only\": 1"));
    }

    #[test]
    fn snapshot_indent_embeds_cleanly() {
        let registry = Registry::new();
        with_registry(&registry, || counter("k", 1));
        let embedded = registry.snapshot_json_indented(true, 2);
        assert!(embedded.starts_with('{'));
        assert!(embedded.ends_with("    }"), "closing brace at level 2");
    }
}

//! Structured trace events: a ring-buffered event stream with two
//! exporters (Chrome trace-event JSON and collapsed-stack text).
//!
//! Where the [`Registry`](crate::Registry) answers *how much* work
//! happened, the [`Tracer`] answers *when and in what order*: every span
//! entry/exit, instant event, and deterministic counter increment is
//! appended to a bounded ring buffer, stamped with both a wall-clock
//! offset and a **deterministic logical timestamp**.
//!
//! # Tracks
//!
//! Events are attributed to *tracks* — logical threads of execution
//! identified by the path of `par_map_indexed` task indices that led to
//! them (see [`with_track`](crate::with_track)). Because task indices
//! are a function of the input alone, track identity is stable across
//! `--threads N`: the same work lands on the same track no matter which
//! OS thread ran it. Each track carries its own logical clock
//! (incremented once per event on that track), and work on one track is
//! sequential, so per-track event order is deterministic.
//!
//! # Exporters
//!
//! * [`Tracer::export_chrome`] renders the Chrome trace-event JSON
//!   format, loadable in Perfetto or `chrome://tracing`; each track
//!   becomes a named "thread". Wall-clock timestamps make this export
//!   machine-dependent — it is for humans hunting hot paths.
//! * [`Tracer::export_collapsed`] renders collapsed-stack text
//!   (`frame;frame;frame weight` lines) ready for flamegraph tooling.
//!   In [`TimeBase::Logical`] mode the weights are logical event ticks,
//!   making the output **byte-identical across thread counts** (pinned
//!   by tests); [`TimeBase::Wall`] weights by nanoseconds of self time.
//!
//! # Overflow
//!
//! The ring buffer holds at most `capacity` events; beyond that the
//! oldest events are dropped and counted ([`Tracer::dropped`]). Because
//! global arrival order is scheduler-dependent, an overflowing trace is
//! no longer comparable across thread counts — size the buffer for the
//! run (the default fits a full `repro all`) or treat a nonzero dropped
//! count as "timeline only, not a determinism artifact".

use crate::registry::json_string;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity: comfortably fits a traced `repro all` run.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Which clock weighs a collapsed-stack export.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeBase {
    /// Self time in nanoseconds — for real profiling, machine-dependent.
    Wall,
    /// Logical event ticks — deterministic, byte-identical across
    /// thread counts (and machines, for a fixed seed and scale).
    Logical,
}

#[derive(Clone, Debug)]
enum EventKind {
    /// Span entry. `synthetic` marks frames replayed onto a child track
    /// to root its stacks under the spans open at track entry; they are
    /// excluded from logical weights because the number of track entries
    /// (e.g. screening chunks) may legitimately vary across hosts.
    Begin {
        name: String,
        synthetic: bool,
        /// Extra key/value annotations rendered only into the Chrome
        /// export's `args` object; the collapsed export ignores them so
        /// logical weights stay byte-identical with or without args.
        args: Vec<(String, String)>,
    },
    End {
        name: String,
        synthetic: bool,
    },
    Instant {
        name: String,
        args: Vec<(String, String)>,
    },
    Counter {
        name: String,
        delta: u64,
    },
}

#[derive(Clone, Debug)]
struct Event {
    track: u32,
    logical: u64,
    wall_ns: u64,
    kind: EventKind,
}

struct TrackInfo {
    path: Vec<u64>,
    label: Option<String>,
    clock: u64,
}

struct TraceState {
    epoch: Instant,
    capacity: usize,
    events: VecDeque<Event>,
    tracks: Vec<TrackInfo>,
    ids: HashMap<Vec<u64>, u32>,
    dropped: u64,
}

impl TraceState {
    fn intern(&mut self, path: &[u64]) -> u32 {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = self.tracks.len() as u32;
        self.tracks.push(TrackInfo {
            path: path.to_vec(),
            label: None,
            clock: 0,
        });
        self.ids.insert(path.to_vec(), id);
        id
    }

    fn record(&mut self, path: &[u64], kind: EventKind) {
        let wall_ns = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let id = self.intern(path);
        let track = &mut self.tracks[id as usize];
        track.clock += 1;
        let logical = track.clock;
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            track: id,
            logical,
            wall_ns,
            kind,
        });
    }
}

/// A shared handle to a bounded trace-event buffer. Cheap to clone;
/// safe to record into from many threads. Install it on the current
/// thread with [`with_tracer`](crate::with_tracer).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TraceState>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer whose ring holds at most `capacity` events (≥ 1).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TraceState {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                events: VecDeque::new(),
                tracks: Vec::new(),
                ids: HashMap::new(),
                dropped: 0,
            })),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when no event has been recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full. Nonzero means
    /// the trace is truncated and no longer comparable across runs.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    pub(crate) fn begin(&self, track: &[u64], name: &str, synthetic: bool) {
        self.begin_args(track, name, synthetic, &[]);
    }

    pub(crate) fn begin_args(
        &self,
        track: &[u64],
        name: &str,
        synthetic: bool,
        args: &[(&str, &str)],
    ) {
        self.inner.lock().unwrap().record(
            track,
            EventKind::Begin {
                name: name.to_string(),
                synthetic,
                args: own_args(args),
            },
        );
    }

    pub(crate) fn end(&self, track: &[u64], name: &str, synthetic: bool) {
        self.inner.lock().unwrap().record(
            track,
            EventKind::End {
                name: name.to_string(),
                synthetic,
            },
        );
    }

    pub(crate) fn instant_event_args(&self, track: &[u64], name: &str, args: &[(&str, &str)]) {
        self.inner.lock().unwrap().record(
            track,
            EventKind::Instant {
                name: name.to_string(),
                args: own_args(args),
            },
        );
    }

    pub(crate) fn counter_sample(&self, track: &[u64], name: &str, delta: u64) {
        self.inner.lock().unwrap().record(
            track,
            EventKind::Counter {
                name: name.to_string(),
                delta,
            },
        );
    }

    pub(crate) fn label(&self, track: &[u64], name: &str) {
        let mut state = self.inner.lock().unwrap();
        let id = state.intern(track);
        state.tracks[id as usize].label = Some(name.to_string());
    }

    /// Renders the buffer as Chrome trace-event JSON (the `traceEvents`
    /// array format), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Each track becomes one "thread" of pid 1, named by its label (see
    /// [`label_track`](crate::label_track)) or its task-index path.
    /// Spans render as `B`/`E` pairs, instants as `i`, and counter
    /// samples as `C` events carrying the per-track running total.
    pub fn export_chrome(&self) -> String {
        let state = self.inner.lock().unwrap();
        // Stable track numbering: sort tracks by index path, not by the
        // scheduler-dependent order in which they were first seen.
        let mut order: Vec<usize> = (0..state.tracks.len()).collect();
        order.sort_by(|&a, &b| state.tracks[a].path.cmp(&state.tracks[b].path));
        let mut tid_of = vec![0usize; state.tracks.len()];
        for (tid, &internal) in order.iter().enumerate() {
            tid_of[internal] = tid;
        }

        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"displayTimeUnit\": \"ms\",").unwrap();
        writeln!(
            out,
            "  \"otherData\": {{\"dropped_events\": \"{}\"}},",
            state.dropped
        )
        .unwrap();
        out.push_str("  \"traceEvents\": [\n");
        writeln!(
            out,
            "    {{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"repro\"}}}}"
        )
        .unwrap();
        for (tid, &internal) in order.iter().enumerate() {
            let track = &state.tracks[internal];
            let name = track.label.clone().unwrap_or_else(|| {
                if track.path.is_empty() {
                    "main".to_string()
                } else {
                    let path: Vec<String> = track
                        .path
                        .iter()
                        .map(|segment| segment.to_string())
                        .collect();
                    format!("task {}", path.join("."))
                }
            });
            writeln!(
                out,
                "    ,{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_string(&name)
            )
            .unwrap();
            writeln!(
                out,
                "    ,{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                 \"name\": \"thread_sort_index\", \"args\": {{\"sort_index\": {tid}}}}}"
            )
            .unwrap();
        }

        // Event body, grouped per track in logical order so timestamps
        // are monotone within every tid.
        let mut per_track: Vec<Vec<&Event>> = vec![Vec::new(); state.tracks.len()];
        for event in &state.events {
            per_track[event.track as usize].push(event);
        }
        let mut running: HashMap<(usize, &str), u64> = HashMap::new();
        for &internal in &order {
            let tid = tid_of[internal];
            for event in &per_track[internal] {
                let ts_us = event.wall_ns / 1_000;
                let ts_frac = event.wall_ns % 1_000;
                let logical = event.logical;
                // Synthetic frames (context replayed onto a child track)
                // get their own category so Perfetto queries can filter
                // them out of span statistics.
                let cat = |synthetic: &bool| if *synthetic { "context" } else { "span" };
                match &event.kind {
                    EventKind::Begin {
                        name,
                        synthetic,
                        args,
                    } => writeln!(
                        out,
                        "    ,{{\"ph\": \"B\", \"pid\": 1, \"tid\": {tid}, \
                         \"ts\": {ts_us}.{ts_frac:03}, \"cat\": \"{}\", \"name\": {}, \
                         \"args\": {{\"logical\": {logical}{}}}}}",
                        cat(synthetic),
                        json_string(name),
                        render_args(args)
                    )
                    .unwrap(),
                    EventKind::End { name, synthetic } => writeln!(
                        out,
                        "    ,{{\"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \
                         \"ts\": {ts_us}.{ts_frac:03}, \"cat\": \"{}\", \"name\": {}, \
                         \"args\": {{\"logical\": {logical}}}}}",
                        cat(synthetic),
                        json_string(name)
                    )
                    .unwrap(),
                    EventKind::Instant { name, args } => writeln!(
                        out,
                        "    ,{{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {tid}, \
                         \"ts\": {ts_us}.{ts_frac:03}, \"cat\": \"instant\", \"name\": {}, \
                         \"args\": {{\"logical\": {logical}{}}}}}",
                        json_string(name),
                        render_args(args)
                    )
                    .unwrap(),
                    EventKind::Counter { name, delta } => {
                        let slot = running.entry((tid, name.as_str())).or_insert(0);
                        *slot = slot.saturating_add(*delta);
                        writeln!(
                            out,
                            "    ,{{\"ph\": \"C\", \"pid\": 1, \"tid\": {tid}, \
                             \"ts\": {ts_us}.{ts_frac:03}, \"cat\": \"counter\", \
                             \"name\": {}, \"args\": {{\"value\": {}, \"logical\": {logical}}}}}",
                            json_string(name),
                            slot
                        )
                        .unwrap();
                    }
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the buffer as collapsed-stack text: one
    /// `frame;frame;frame weight` line per distinct stack, sorted, ready
    /// for `flamegraph.pl` or speedscope.
    ///
    /// Stacks are replayed per track from the span begin/end events
    /// (instants and counter samples appear as leaf frames), then merged
    /// across tracks. With [`TimeBase::Logical`] each non-synthetic
    /// event contributes one tick to the stack it occurred under, so the
    /// output depends only on what was executed — byte-identical across
    /// `--threads N` as long as nothing was dropped. With
    /// [`TimeBase::Wall`] each interval between consecutive events on a
    /// track contributes its nanoseconds to the stack in effect.
    pub fn export_collapsed(&self, base: TimeBase) -> String {
        let state = self.inner.lock().unwrap();
        let mut per_track: Vec<Vec<&Event>> = vec![Vec::new(); state.tracks.len()];
        for event in &state.events {
            per_track[event.track as usize].push(event);
        }
        let mut weights: BTreeMap<String, u128> = BTreeMap::new();
        for events in &per_track {
            let mut stack: Vec<&str> = Vec::new();
            let mut prev_wall: Option<u64> = None;
            for event in events {
                if base == TimeBase::Wall {
                    if let Some(prev) = prev_wall {
                        if !stack.is_empty() {
                            let key = stack.join(";");
                            *weights.entry(key).or_insert(0) +=
                                u128::from(event.wall_ns.saturating_sub(prev));
                        }
                    }
                    prev_wall = Some(event.wall_ns);
                }
                match &event.kind {
                    EventKind::Begin {
                        name, synthetic, ..
                    } => {
                        stack.push(name);
                        if base == TimeBase::Logical && !synthetic {
                            *weights.entry(stack.join(";")).or_insert(0) += 1;
                        }
                    }
                    EventKind::End { .. } => {
                        stack.pop();
                    }
                    EventKind::Instant { name, .. } | EventKind::Counter { name, .. } => {
                        if base == TimeBase::Logical {
                            let key = if stack.is_empty() {
                                name.clone()
                            } else {
                                format!("{};{name}", stack.join(";"))
                            };
                            *weights.entry(key).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let mut out = String::new();
        for (stack, weight) in &weights {
            if *weight > 0 {
                writeln!(out, "{stack} {weight}").unwrap();
            }
        }
        out
    }
}

fn own_args(args: &[(&str, &str)]) -> Vec<(String, String)> {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Renders trace-event annotations as `, "key": "value"` JSON fragments
/// appended after the `logical` arg, in the order they were recorded.
fn render_args(args: &[(String, String)]) -> String {
    let mut out = String::new();
    for (key, value) in args {
        write!(out, ", {}: {}", json_string(key), json_string(value)).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tracer = Tracer::with_capacity(3);
        for i in 0..5u64 {
            tracer.instant_event_args(&[], &format!("e{i}"), &[]);
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert!(!folded.contains("e0"), "oldest dropped: {folded}");
        assert!(folded.contains("e4 1"));
    }

    #[test]
    fn logical_clock_is_per_track() {
        let tracer = Tracer::new();
        tracer.instant_event_args(&[0], "a", &[]);
        tracer.instant_event_args(&[1], "b", &[]);
        tracer.instant_event_args(&[0], "c", &[]);
        let state = tracer.inner.lock().unwrap();
        let clocks: Vec<u64> = state.tracks.iter().map(|t| t.clock).collect();
        assert_eq!(clocks, vec![2, 1]);
    }

    #[test]
    fn collapsed_logical_nests_spans_and_leaves() {
        let tracer = Tracer::new();
        tracer.begin(&[], "outer", false);
        tracer.begin(&[], "inner", false);
        tracer.instant_event_args(&[], "tick", &[]);
        tracer.end(&[], "inner", false);
        tracer.counter_sample(&[], "n", 3);
        tracer.end(&[], "outer", false);
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert_eq!(
            folded,
            "outer 1\nouter;inner 1\nouter;inner;tick 1\nouter;n 1\n"
        );
    }

    #[test]
    fn synthetic_frames_shape_stacks_but_carry_no_weight() {
        let tracer = Tracer::new();
        tracer.begin(&[7], "parent", true);
        tracer.begin(&[7], "child", false);
        tracer.end(&[7], "child", false);
        tracer.end(&[7], "parent", true);
        let folded = tracer.export_collapsed(TimeBase::Logical);
        assert_eq!(folded, "parent;child 1\n");
    }

    #[test]
    fn wall_mode_attributes_intervals_to_open_stack() {
        let tracer = Tracer::new();
        tracer.begin(&[], "work", false);
        std::thread::sleep(std::time::Duration::from_millis(2));
        tracer.end(&[], "work", false);
        let folded = tracer.export_collapsed(TimeBase::Wall);
        let weight: u128 = folded
            .strip_prefix("work ")
            .and_then(|w| w.trim().parse().ok())
            .expect("one work line");
        assert!(weight >= 1_000_000, "at least 1ms of self time: {folded}");
    }

    #[test]
    fn chrome_export_names_tracks_and_balances_pairs() {
        let tracer = Tracer::new();
        tracer.begin(&[], "root", false);
        tracer.instant_event_args(&[3], "spark", &[]);
        tracer.label(&[3], "fig9");
        tracer.counter_sample(&[3], "n", 2);
        tracer.counter_sample(&[3], "n", 5);
        tracer.end(&[], "root", false);
        let json = tracer.export_chrome();
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"fig9\""), "label used: {json}");
        assert!(json.contains("\"main\""));
        assert!(json.contains("\"value\": 7"), "running counter: {json}");
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
    }

    #[test]
    fn args_render_in_chrome_but_not_in_collapsed() {
        let with_args = Tracer::new();
        with_args.begin_args(&[], "req", false, &[("route", "/app"), ("class", "stale")]);
        with_args.instant_event_args(&[], "edge", &[("result", "hit")]);
        with_args.end(&[], "req", false);

        let without = Tracer::new();
        without.begin(&[], "req", false);
        without.instant_event_args(&[], "edge", &[]);
        without.end(&[], "req", false);

        let chrome = with_args.export_chrome();
        assert!(chrome.contains("\"route\": \"/app\""), "{chrome}");
        assert!(chrome.contains("\"class\": \"stale\""), "{chrome}");
        assert!(chrome.contains("\"result\": \"hit\""), "{chrome}");
        // Args never leak into the deterministic collapsed export.
        assert_eq!(
            with_args.export_collapsed(TimeBase::Logical),
            without.export_collapsed(TimeBase::Logical)
        );
    }

    #[test]
    fn empty_tracer_exports_cleanly() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        assert_eq!(tracer.export_collapsed(TimeBase::Logical), "");
        assert!(tracer.export_chrome().contains("\"traceEvents\""));
    }
}

//! The metric, span, and instant-event name registry.
//!
//! Every name the workspace records is declared here as a constant (or,
//! for per-policy cache metrics, a constructor), so a typo'd name is a
//! compile error at the call site instead of a silently empty series.
//! The golden suite closes the loop from the other side: a test asserts
//! that every key in the pinned metrics snapshot satisfies
//! [`is_declared_metric`] / [`is_declared_span_path`], so a name added
//! without a declaration fails CI.

// Counters, gauges, and histograms, grouped by owning crate.

/// Affinity comment streams analyzed.
pub const AFFINITY_STREAMS: &str = "affinity.streams";
/// Affinity (user, depth) samples aggregated.
pub const AFFINITY_SAMPLES: &str = "affinity.samples";

/// `par_map_indexed` invocations.
pub const CORE_PAR_CALLS: &str = "core.par.calls";
/// Total tasks fanned out across all `par_map_indexed` calls.
pub const CORE_PAR_TASKS: &str = "core.par.tasks";
/// Per-worker task count distribution (volatile histogram).
pub const CORE_PAR_WORKER_TASKS: &str = "core.par.worker_tasks";
/// Worker panics caught and retried by `par_map_indexed`.
pub const CORE_PAR_PANICS_ISOLATED: &str = "core.par.panics_isolated";
/// Tasks dropped by `par_map_indexed_lossy` after a failed retry.
pub const CORE_PAR_TASKS_DEGRADED: &str = "core.par.tasks_degraded";
/// Faults fired by the deterministic fault injector.
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Gap-repair passes executed.
pub const CORE_QUALITY_REPAIRS: &str = "core.quality.repairs";
/// Missing days filled by gap repair.
pub const CORE_QUALITY_GAP_DAYS_FILLED: &str = "core.quality.gap_days_filled";

/// Crawl days completed.
pub const CRAWL_DAYS: &str = "crawl.days";
/// App pages fetched.
pub const CRAWL_APP_PAGES: &str = "crawl.app_pages";
/// Comment pages fetched.
pub const CRAWL_COMMENT_PAGES: &str = "crawl.comment_pages";
/// Total requests issued.
pub const CRAWL_REQUESTS: &str = "crawl.requests";
/// Requests retried.
pub const CRAWL_RETRIES: &str = "crawl.retries";
/// Responses dropped in transit.
pub const CRAWL_DROPPED: &str = "crawl.dropped";
/// Responses corrupted in transit.
pub const CRAWL_CORRUPTED: &str = "crawl.corrupted";
/// Requests rejected by server rate limiting.
pub const CRAWL_RATE_LIMITED: &str = "crawl.rate_limited";
/// Proxies blacklisted by the server.
pub const CRAWL_PROXIES_BANNED: &str = "crawl.proxies_banned";
/// Pages abandoned after retry exhaustion.
pub const CRAWL_FAILED_PAGES: &str = "crawl.failed_pages";
/// Resume position of a resumable campaign (gauge).
pub const CRAWL_RESUME_INDEX: &str = "crawl.resume_index";
/// Proxy-pool permanent bans.
pub const CRAWL_PROXY_BANS: &str = "crawl.proxy.bans";
/// Circuit-breaker trips (also an instant event).
pub const CRAWL_BREAKER_TRIPS: &str = "crawl.breaker.trips";
/// Circuit-breaker closes (also an instant event).
pub const CRAWL_BREAKER_CLOSES: &str = "crawl.breaker.closes";
/// Journal read passes.
pub const CRAWL_JOURNAL_READS: &str = "crawl.journal.reads";
/// Journal lines quarantined as corrupt.
pub const CRAWL_JOURNAL_LINES_QUARANTINED: &str = "crawl.journal.lines_quarantined";
/// Journal records deduplicated on replay.
pub const CRAWL_JOURNAL_RECORDS_DEDUPLICATED: &str = "crawl.journal.records_deduplicated";
/// Journals ending in a truncated tail.
pub const CRAWL_JOURNAL_TRUNCATED_TAILS: &str = "crawl.journal.truncated_tails";

/// Pure-Zipf candidates scored.
pub const FIT_ZIPF_CANDIDATES: &str = "fit.zipf.candidates";
/// ZIPF-at-most-once grid size.
pub const FIT_AMO_GRID_CANDIDATES: &str = "fit.amo.grid_candidates";
/// ZIPF-at-most-once candidates screened.
pub const FIT_AMO_SCREENED: &str = "fit.amo.screened";
/// ZIPF-at-most-once candidates pruned before scoring.
pub const FIT_AMO_PRUNED: &str = "fit.amo.pruned";
/// ZIPF-at-most-once candidates refined by simulation.
pub const FIT_AMO_REFINED: &str = "fit.amo.refined";
/// APP-CLUSTERING grid size.
pub const FIT_CLUSTERING_GRID_CANDIDATES: &str = "fit.clustering.grid_candidates";
/// APP-CLUSTERING candidates screened.
pub const FIT_CLUSTERING_SCREENED: &str = "fit.clustering.screened";
/// APP-CLUSTERING candidates pruned before scoring.
pub const FIT_CLUSTERING_PRUNED: &str = "fit.clustering.pruned";
/// APP-CLUSTERING candidates refined by simulation.
pub const FIT_CLUSTERING_REFINED: &str = "fit.clustering.refined";
/// Feasible candidates kept by the coarse subsample pass for exact
/// re-screening (0 when coarse-to-fine is inactive).
pub const FIT_COARSE_SURVIVORS: &str = "fit.coarse.survivors";
/// Feasible candidates dropped by the coarse subsample pass.
pub const FIT_COARSE_PRUNED: &str = "fit.coarse.pruned";
/// Monte-Carlo replications run by a refinement score.
pub const FIT_SIM_REPLICATIONS: &str = "fit.sim.replications";
/// Screening-cache hits (volatile: workers own private caches).
pub const FIT_CACHE_HITS: &str = "fit.cache.hits";
/// Screening-cache misses (volatile).
pub const FIT_CACHE_MISSES: &str = "fit.cache.misses";
/// Records appended to a checkpointed fit journal.
pub const FIT_JOURNAL_APPENDS: &str = "fit.journal.appends";
/// Fit candidates restored from a journal instead of recomputed.
pub const FIT_JOURNAL_CANDIDATES_RESUMED: &str = "fit.journal.candidates_resumed";
/// Fit-journal lines quarantined as corrupt or unparseable.
pub const FIT_JOURNAL_LINES_QUARANTINED: &str = "fit.journal.lines_quarantined";
/// Refinement candidates downgraded to screened-only by a deadline.
pub const FIT_REFINE_DEADLINE_DOWNGRADES: &str = "fit.refine.deadline_downgrades";

/// Simulated downloads produced.
pub const SIM_DOWNLOADS: &str = "sim.downloads";
/// Sampler draws via the Walker/Vose alias table.
pub const SIM_DRAWS_ALIAS: &str = "sim.draws.alias";
/// Sampler draws via inverse-CDF binary search.
pub const SIM_DRAWS_INVERSE_CDF: &str = "sim.draws.inverse_cdf";

/// Prefetch-eligible downloads observed.
pub const PREFETCH_ELIGIBLE: &str = "prefetch.eligible";
/// Downloads served from the prefetch stage.
pub const PREFETCH_HITS: &str = "prefetch.hits";
/// Total downloads seen by the prefetch experiment.
pub const PREFETCH_DOWNLOADS: &str = "prefetch.downloads";
/// Apps staged ahead of demand.
pub const PREFETCH_STAGED: &str = "prefetch.staged";
/// Staged apps never requested.
pub const PREFETCH_WASTED: &str = "prefetch.wasted";

/// Recommender evaluation passes.
pub const RECOMMEND_EVALUATIONS: &str = "recommend.evaluations";
/// Users scored by the recommender evaluation.
pub const RECOMMEND_USERS_EVALUATED: &str = "recommend.users_evaluated";

/// Break-even curve evaluations.
pub const REVENUE_BREAKEVEN_EVALS: &str = "revenue.breakeven_evals";

/// HTTP requests the serving layer parsed off its sockets.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Responses served fresh (edge hit or live backing fetch).
pub const SERVE_RESPONSES_FRESH: &str = "serve.responses.fresh";
/// Responses degraded to a stale edge copy.
pub const SERVE_RESPONSES_STALE: &str = "serve.responses.stale";
/// Responses shed (503/504) instead of served.
pub const SERVE_RESPONSES_SHED: &str = "serve.responses.shed";
/// Connections shed at the accept queue (503 + Retry-After).
pub const SERVE_SHEDS_QUEUE: &str = "serve.sheds.queue";
/// Requests shed because their deadline budget ran out (504).
pub const SERVE_SHEDS_DEADLINE: &str = "serve.sheds.deadline";
/// Requests shed because the backing breaker was open and no stale
/// copy existed (503).
pub const SERVE_SHEDS_BREAKER: &str = "serve.sheds.breaker";
/// Handler panics caught at the worker boundary (500, worker survives).
pub const SERVE_PANICS_CAUGHT: &str = "serve.panics.caught";
/// Edge-cache hits on the app-page path.
pub const SERVE_EDGE_HITS: &str = "serve.edge.hits";
/// Edge-cache misses on the app-page path.
pub const SERVE_EDGE_MISSES: &str = "serve.edge.misses";
/// Edge-cache payload evictions.
pub const SERVE_EDGE_EVICTIONS: &str = "serve.edge.evictions";
/// Rankings served from a fresh edge copy.
pub const SERVE_RANKINGS_FRESH: &str = "serve.rankings.fresh";
/// Rankings served stale (stale-while-revalidate degradation).
pub const SERVE_RANKINGS_STALE: &str = "serve.rankings.stale";
/// Calls that reached the backing store.
pub const SERVE_BACKING_CALLS: &str = "serve.backing.calls";
/// Backing calls that failed (injected I/O errors, timeouts).
pub const SERVE_BACKING_FAILURES: &str = "serve.backing.failures";
/// Requests refused by the backing store's per-client rate limit (429).
pub const SERVE_RATE_LIMITED: &str = "serve.rate_limited";
/// Per-request virtual latency (deterministic histogram, virtual ms).
pub const SERVE_LATENCY_VIRTUAL_MS: &str = "serve.latency.virtual_ms";
/// Per-request wall-clock latency (volatile histogram, microseconds).
pub const SERVE_LATENCY_REAL_US: &str = "serve.latency.real_us";
/// Virtual latency of `/rankings` requests (log-linear histogram).
pub const SERVE_LATENCY_ROUTE_RANKINGS: &str = "serve.latency.route.rankings";
/// Virtual latency of `/app` requests (log-linear histogram).
pub const SERVE_LATENCY_ROUTE_APP: &str = "serve.latency.route.app";
/// Virtual latency of `/download` requests (log-linear histogram).
pub const SERVE_LATENCY_ROUTE_DOWNLOAD: &str = "serve.latency.route.download";
/// Virtual latency of telemetry (`/metrics`, `/healthz`, `/statusz`)
/// requests (log-linear histogram).
pub const SERVE_LATENCY_ROUTE_TELEMETRY: &str = "serve.latency.route.telemetry";
/// Virtual latency of unrecognized-route requests (log-linear histogram).
pub const SERVE_LATENCY_ROUTE_OTHER: &str = "serve.latency.route.other";
/// Virtual latency of responses served fresh (log-linear histogram).
pub const SERVE_LATENCY_CLASS_FRESH: &str = "serve.latency.class.fresh";
/// Virtual latency of responses degraded to stale (log-linear histogram).
pub const SERVE_LATENCY_CLASS_STALE: &str = "serve.latency.class.stale";
/// Virtual latency of shed responses (log-linear histogram).
pub const SERVE_LATENCY_CLASS_SHED: &str = "serve.latency.class.shed";
/// Virtual latency of error responses (log-linear histogram).
pub const SERVE_LATENCY_CLASS_ERROR: &str = "serve.latency.class.error";
/// Telemetry-endpoint scrapes served (`/metrics`, `/healthz`, `/statusz`).
pub const SERVE_TELEMETRY_SCRAPES: &str = "serve.telemetry.scrapes";

/// Backing calls routed through the replica balancer.
pub const BALANCER_ROUTED: &str = "balancer.routed";
/// Hedged (second) requests actually fired.
pub const BALANCER_HEDGES_FIRED: &str = "balancer.hedges.fired";
/// Hedges whose response was used instead of the primary's.
pub const BALANCER_HEDGES_WON: &str = "balancer.hedges.won";
/// Hedges suppressed because the target replica's retry budget was
/// exhausted.
pub const BALANCER_HEDGES_DENIED: &str = "balancer.hedges.denied";
/// Primary-attempt failures recovered by a successful hedge.
pub const BALANCER_FAILOVERS: &str = "balancer.failovers";
/// Replica rankings fingerprints checked by anti-entropy passes.
pub const BALANCER_RECONCILE_CHECKS: &str = "balancer.reconcile.checks";
/// Divergent replicas repaired by anti-entropy passes.
pub const BALANCER_RECONCILE_REPAIRS: &str = "balancer.reconcile.repairs";

/// Emissions of metric names not declared in this module (release
/// builds only; debug builds panic instead). Volatile by construction —
/// its very presence marks a names-drift bug.
pub const OBS_UNDECLARED: &str = "obs.undeclared";

/// Synthetic stores generated.
pub const SYNTH_STORES: &str = "synth.stores";
/// Apps in generated catalogues.
pub const SYNTH_APPS: &str = "synth.apps";
/// Download events generated.
pub const SYNTH_DOWNLOADS: &str = "synth.downloads";
/// Comments generated.
pub const SYNTH_COMMENTS: &str = "synth.comments";
/// App updates generated.
pub const SYNTH_UPDATES: &str = "synth.updates";
/// Daily snapshots materialized.
pub const SYNTH_SNAPSHOTS: &str = "synth.snapshots";

/// Bytes written to columnar spill files (volatile: layout-dependent).
pub const SPILL_BYTES_WRITTEN: &str = "spill.bytes.written";
/// Sealed chunks written to spill files (volatile: shard-dependent).
pub const SPILL_CHUNKS_WRITTEN: &str = "spill.chunks.written";
/// Bytes read back during shard-merge folds (volatile).
pub const SPILL_BYTES_MERGED: &str = "spill.bytes.merged";
/// Sealed chunks folded during shard merges (volatile).
pub const SPILL_CHUNKS_MERGED: &str = "spill.chunks.merged";
/// Spill chunks quarantined on read (seal mismatch or undecodable).
pub const SPILL_CHUNKS_QUARANTINED: &str = "spill.chunks.quarantined";
/// Shards in the active out-of-core shard plan (volatile gauge).
pub const SPILL_SHARDS: &str = "spill.shards";

/// Every fixed (non-parameterized) metric name above, for coverage
/// checks against exported snapshots.
pub const ALL_METRICS: &[&str] = &[
    AFFINITY_STREAMS,
    AFFINITY_SAMPLES,
    CORE_PAR_CALLS,
    CORE_PAR_TASKS,
    CORE_PAR_WORKER_TASKS,
    CORE_PAR_PANICS_ISOLATED,
    CORE_PAR_TASKS_DEGRADED,
    FAULTS_INJECTED,
    CORE_QUALITY_REPAIRS,
    CORE_QUALITY_GAP_DAYS_FILLED,
    CRAWL_DAYS,
    CRAWL_APP_PAGES,
    CRAWL_COMMENT_PAGES,
    CRAWL_REQUESTS,
    CRAWL_RETRIES,
    CRAWL_DROPPED,
    CRAWL_CORRUPTED,
    CRAWL_RATE_LIMITED,
    CRAWL_PROXIES_BANNED,
    CRAWL_FAILED_PAGES,
    CRAWL_RESUME_INDEX,
    CRAWL_PROXY_BANS,
    CRAWL_BREAKER_TRIPS,
    CRAWL_BREAKER_CLOSES,
    CRAWL_JOURNAL_READS,
    CRAWL_JOURNAL_LINES_QUARANTINED,
    CRAWL_JOURNAL_RECORDS_DEDUPLICATED,
    CRAWL_JOURNAL_TRUNCATED_TAILS,
    FIT_ZIPF_CANDIDATES,
    FIT_AMO_GRID_CANDIDATES,
    FIT_AMO_SCREENED,
    FIT_AMO_PRUNED,
    FIT_AMO_REFINED,
    FIT_CLUSTERING_GRID_CANDIDATES,
    FIT_CLUSTERING_SCREENED,
    FIT_CLUSTERING_PRUNED,
    FIT_CLUSTERING_REFINED,
    FIT_COARSE_SURVIVORS,
    FIT_COARSE_PRUNED,
    FIT_SIM_REPLICATIONS,
    FIT_CACHE_HITS,
    FIT_CACHE_MISSES,
    FIT_JOURNAL_APPENDS,
    FIT_JOURNAL_CANDIDATES_RESUMED,
    FIT_JOURNAL_LINES_QUARANTINED,
    FIT_REFINE_DEADLINE_DOWNGRADES,
    SIM_DOWNLOADS,
    SIM_DRAWS_ALIAS,
    SIM_DRAWS_INVERSE_CDF,
    PREFETCH_ELIGIBLE,
    PREFETCH_HITS,
    PREFETCH_DOWNLOADS,
    PREFETCH_STAGED,
    PREFETCH_WASTED,
    RECOMMEND_EVALUATIONS,
    RECOMMEND_USERS_EVALUATED,
    REVENUE_BREAKEVEN_EVALS,
    SERVE_REQUESTS,
    SERVE_RESPONSES_FRESH,
    SERVE_RESPONSES_STALE,
    SERVE_RESPONSES_SHED,
    SERVE_SHEDS_QUEUE,
    SERVE_SHEDS_DEADLINE,
    SERVE_SHEDS_BREAKER,
    SERVE_PANICS_CAUGHT,
    SERVE_EDGE_HITS,
    SERVE_EDGE_MISSES,
    SERVE_EDGE_EVICTIONS,
    SERVE_RANKINGS_FRESH,
    SERVE_RANKINGS_STALE,
    SERVE_BACKING_CALLS,
    SERVE_BACKING_FAILURES,
    SERVE_RATE_LIMITED,
    SERVE_LATENCY_VIRTUAL_MS,
    SERVE_LATENCY_REAL_US,
    SERVE_LATENCY_ROUTE_RANKINGS,
    SERVE_LATENCY_ROUTE_APP,
    SERVE_LATENCY_ROUTE_DOWNLOAD,
    SERVE_LATENCY_ROUTE_TELEMETRY,
    SERVE_LATENCY_ROUTE_OTHER,
    SERVE_LATENCY_CLASS_FRESH,
    SERVE_LATENCY_CLASS_STALE,
    SERVE_LATENCY_CLASS_SHED,
    SERVE_LATENCY_CLASS_ERROR,
    SERVE_TELEMETRY_SCRAPES,
    BALANCER_ROUTED,
    BALANCER_HEDGES_FIRED,
    BALANCER_HEDGES_WON,
    BALANCER_HEDGES_DENIED,
    BALANCER_FAILOVERS,
    BALANCER_RECONCILE_CHECKS,
    BALANCER_RECONCILE_REPAIRS,
    OBS_UNDECLARED,
    SYNTH_STORES,
    SYNTH_APPS,
    SYNTH_DOWNLOADS,
    SYNTH_COMMENTS,
    SYNTH_UPDATES,
    SYNTH_SNAPSHOTS,
    SPILL_BYTES_WRITTEN,
    SPILL_CHUNKS_WRITTEN,
    SPILL_BYTES_MERGED,
    SPILL_CHUNKS_MERGED,
    SPILL_CHUNKS_QUARANTINED,
    SPILL_SHARDS,
];

/// Declared suffixes of the per-policy cache metric family
/// `cache.<policy>.<suffix>`.
pub const CACHE_METRIC_SUFFIXES: &[&str] = &["requests", "hits", "misses", "evictions"];

/// Requests seen by cache policy `policy`.
pub fn cache_requests(policy: &str) -> String {
    format!("cache.{policy}.requests")
}

/// Hits recorded by cache policy `policy`.
pub fn cache_hits(policy: &str) -> String {
    format!("cache.{policy}.hits")
}

/// Misses recorded by cache policy `policy`.
pub fn cache_misses(policy: &str) -> String {
    format!("cache.{policy}.misses")
}

/// Evictions performed by cache policy `policy`.
pub fn cache_evictions(policy: &str) -> String {
    format!("cache.{policy}.evictions")
}

// Span names (segments of exported `/`-joined span paths).

/// One crawl day (crawler campaign loop).
pub const SPAN_CRAWL_DAY: &str = "crawl.day";
/// Analytic screening pass of a model fit.
pub const SPAN_FIT_SCREEN: &str = "fit.screen";
/// Monte-Carlo refinement pass of a model fit.
pub const SPAN_FIT_REFINE: &str = "fit.refine";
/// One synthetic store generation.
pub const SPAN_SYNTH_GENERATE: &str = "synth.generate";
/// Generation of the whole calibrated store set.
pub const SPAN_STORES_GENERATE: &str = "stores.generate";
/// One store generated straight into spill files (out-of-core path).
pub const SPAN_SPILL_STORE: &str = "spill.store";
/// One shard-merge fold over spill files.
pub const SPAN_SPILL_FOLD: &str = "spill.fold";
/// Server-side handling of one traced request (per-request track).
pub const SPAN_SERVE_REQUEST: &str = "serve.request";
/// Client-side view of one traced replay request (per-request track).
pub const SPAN_SERVE_CLIENT: &str = "serve.client";

/// Every declared span name.
pub const ALL_SPANS: &[&str] = &[
    SPAN_CRAWL_DAY,
    SPAN_FIT_SCREEN,
    SPAN_FIT_REFINE,
    SPAN_SYNTH_GENERATE,
    SPAN_STORES_GENERATE,
    SPAN_SPILL_STORE,
    SPAN_SPILL_FOLD,
    SPAN_SERVE_REQUEST,
    SPAN_SERVE_CLIENT,
];

// Instant-event names (trace-only; never appear in metric snapshots).

/// A model-fit grid candidate was screened.
pub const INSTANT_FIT_CANDIDATE_SCREENED: &str = "fit.candidate.screened";
/// A shortlisted candidate was re-scored by simulation.
pub const INSTANT_FIT_CANDIDATE_REFINED: &str = "fit.candidate.refined";
/// A proxy circuit breaker tripped open.
pub const INSTANT_CRAWL_BREAKER_TRIP: &str = "crawl.breaker.trip";
/// A proxy circuit breaker closed after a successful probe.
pub const INSTANT_CRAWL_BREAKER_CLOSE: &str = "crawl.breaker.close";
/// Queue-admission stage of a traced serve request (depth annotation).
pub const INSTANT_SERVE_STAGE_QUEUE: &str = "serve.stage.queue";
/// Edge-cache stage of a traced serve request (hit/miss/stale).
pub const INSTANT_SERVE_STAGE_EDGE: &str = "serve.stage.edge";
/// Backing-fetch stage of a traced serve request (breaker state).
pub const INSTANT_SERVE_STAGE_BACKING: &str = "serve.stage.backing";
/// Deadline-budget stage of a traced serve request (burn annotation).
pub const INSTANT_SERVE_STAGE_DEADLINE: &str = "serve.stage.deadline";

/// Every declared instant-event name.
pub const ALL_INSTANTS: &[&str] = &[
    INSTANT_FIT_CANDIDATE_SCREENED,
    INSTANT_FIT_CANDIDATE_REFINED,
    INSTANT_CRAWL_BREAKER_TRIP,
    INSTANT_CRAWL_BREAKER_CLOSE,
    INSTANT_SERVE_STAGE_QUEUE,
    INSTANT_SERVE_STAGE_EDGE,
    INSTANT_SERVE_STAGE_BACKING,
    INSTANT_SERVE_STAGE_DEADLINE,
];

/// True when `name` is a declared counter/gauge/histogram name: either
/// an exact [`ALL_METRICS`] entry, a `cache.<policy>.<suffix>` family
/// member with a declared suffix and nonempty policy, or a `test.`
/// scratch name.
///
/// The `test.` prefix is the unit-test escape hatch: test code may
/// record ad-hoc names under it without registering them here, and the
/// facade's undeclared-name guard lets them through. Production code
/// must never use it — the prefix makes such names easy to grep for.
pub fn is_declared_metric(name: &str) -> bool {
    if ALL_METRICS.contains(&name) {
        return true;
    }
    if name
        .strip_prefix("test.")
        .is_some_and(|rest| !rest.is_empty())
    {
        return true;
    }
    if let Some(rest) = name.strip_prefix("cache.") {
        if let Some((policy, suffix)) = rest.rsplit_once('.') {
            return !policy.is_empty() && CACHE_METRIC_SUFFIXES.contains(&suffix);
        }
    }
    false
}

/// True when every `/`-separated segment of an exported span path is a
/// declared span name.
pub fn is_declared_span_path(path: &str) -> bool {
    !path.is_empty() && path.split('/').all(|segment| ALL_SPANS.contains(&segment))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_are_declared() {
        assert!(is_declared_metric("crawl.retries"));
        assert!(is_declared_metric("fit.cache.hits"));
        assert!(!is_declared_metric("crawl.retrys"));
        assert!(!is_declared_metric(""));
    }

    #[test]
    fn cache_family_is_declared_by_pattern() {
        assert!(is_declared_metric(&cache_requests("lru")));
        assert!(is_declared_metric(&cache_evictions("belady")));
        assert!(is_declared_metric("cache.two.level.hits"));
        assert!(!is_declared_metric("cache..hits"));
        assert!(!is_declared_metric("cache.lru.latency"));
    }

    #[test]
    fn span_paths_validate_per_segment() {
        assert!(is_declared_span_path("crawl.day"));
        assert!(is_declared_span_path("stores.generate/synth.generate"));
        assert!(!is_declared_span_path("stores.generate/unknown"));
        assert!(!is_declared_span_path(""));
    }

    #[test]
    fn test_prefix_is_a_unit_test_escape_hatch() {
        assert!(is_declared_metric("test.anything.goes"));
        assert!(is_declared_metric("test.c"));
        assert!(!is_declared_metric("test."));
        assert!(!is_declared_metric("testing.c"));
    }

    #[test]
    fn no_duplicate_declarations() {
        let mut metrics: Vec<&str> = ALL_METRICS.to_vec();
        metrics.sort_unstable();
        metrics.dedup();
        assert_eq!(metrics.len(), ALL_METRICS.len());
    }
}

//! Linear and logarithmic binning.
//!
//! Figure 12 groups apps into one-dollar price bins; the popularity curves
//! are often summarized with logarithmic bins. [`Histogram`] supports both
//! layouts and carries per-bin counts plus an attached value accumulator
//! (so "average downloads of apps priced $2–3" is one pass).

use serde::{Deserialize, Serialize};

/// One histogram bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of samples that fell in the bin.
    pub count: u64,
    /// Sum of attached values of those samples.
    pub value_sum: f64,
}

impl HistogramBin {
    /// Midpoint of the bin.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Mean attached value, or `None` for an empty bin.
    pub fn mean_value(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.value_sum / self.count as f64)
        }
    }
}

/// A fixed-layout histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<HistogramBin>,
    log_scale: bool,
    lo: f64,
    hi: f64,
}

impl Histogram {
    /// Creates `n` equal-width bins covering `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(n > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        let width = (hi - lo) / n as f64;
        let bins = (0..n)
            .map(|i| HistogramBin {
                lo: lo + width * i as f64,
                hi: lo + width * (i + 1) as f64,
                count: 0,
                value_sum: 0.0,
            })
            .collect();
        Histogram {
            bins,
            log_scale: false,
            lo,
            hi,
        }
    }

    /// Creates `n` logarithmically-spaced bins covering `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `lo <= 0`, or `hi <= lo`.
    pub fn logarithmic(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(n > 0, "histogram needs at least one bin");
        assert!(lo > 0.0, "log histogram needs a positive lower edge");
        assert!(hi > lo, "histogram range must be nonempty");
        let ratio = (hi / lo).powf(1.0 / n as f64);
        let bins = (0..n)
            .map(|i| HistogramBin {
                lo: lo * ratio.powi(i as i32),
                hi: lo * ratio.powi(i as i32 + 1),
                count: 0,
                value_sum: 0.0,
            })
            .collect();
        Histogram {
            bins,
            log_scale: true,
            lo,
            hi,
        }
    }

    /// Index of the bin containing `x`, or `None` if out of range.
    pub fn bin_index(&self, x: f64) -> Option<usize> {
        if x < self.lo || x > self.hi || x.is_nan() {
            return None;
        }
        let n = self.bins.len();
        let raw = if self.log_scale {
            (x / self.lo).ln() / (self.hi / self.lo).ln() * n as f64
        } else {
            (x - self.lo) / (self.hi - self.lo) * n as f64
        };
        Some((raw.floor() as usize).min(n - 1))
    }

    /// Adds a sample with an attached value. Out-of-range samples are
    /// counted separately and retrievable via [`Histogram::dropped`].
    pub fn add(&mut self, x: f64, value: f64) -> bool {
        match self.bin_index(x) {
            Some(i) => {
                self.bins[i].count += 1;
                self.bins[i].value_sum += value;
                true
            }
            None => false,
        }
    }

    /// Adds a bare sample (value 0).
    pub fn add_sample(&mut self, x: f64) -> bool {
        self.add(x, 0.0)
    }

    /// The bins in order.
    pub fn bins(&self) -> &[HistogramBin] {
        &self.bins
    }

    /// Total count across bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|b| b.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        assert!(h.add_sample(0.0)); // bin 0
        assert!(h.add_sample(1.99)); // bin 0
        assert!(h.add_sample(2.0)); // bin 1
        assert!(h.add_sample(10.0)); // clamped into last bin
        assert!(!h.add_sample(10.01));
        assert!(!h.add_sample(-0.1));
        let counts: Vec<u64> = h.bins().iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn value_accumulation() {
        let mut h = Histogram::linear(0.0, 4.0, 2);
        h.add(0.5, 10.0);
        h.add(1.0, 30.0);
        h.add(3.0, 7.0);
        assert_eq!(h.bins()[0].mean_value(), Some(20.0));
        assert_eq!(h.bins()[1].mean_value(), Some(7.0));
        let empty = Histogram::linear(0.0, 1.0, 1);
        assert_eq!(empty.bins()[0].mean_value(), None);
    }

    #[test]
    fn log_binning_edges_are_geometric() {
        let h = Histogram::logarithmic(1.0, 1000.0, 3);
        let bins = h.bins();
        assert!((bins[0].hi - 10.0).abs() < 1e-9);
        assert!((bins[1].hi - 100.0).abs() < 1e-9);
        assert!((bins[2].hi - 1000.0).abs() < 1e-6);
        assert_eq!(h.bin_index(5.0), Some(0));
        assert_eq!(h.bin_index(50.0), Some(1));
        assert_eq!(h.bin_index(500.0), Some(2));
        assert_eq!(h.bin_index(1000.0), Some(2));
    }

    #[test]
    fn nan_is_dropped() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        assert!(!h.add_sample(f64::NAN));
    }

    #[test]
    #[should_panic(expected = "positive lower edge")]
    fn log_rejects_zero_edge() {
        let _ = Histogram::logarithmic(0.0, 10.0, 3);
    }

    proptest! {
        #[test]
        fn every_in_range_sample_lands_in_matching_bin(x in 0.0f64..100.0) {
            let h = Histogram::linear(0.0, 100.0, 17);
            let i = h.bin_index(x).unwrap();
            let b = h.bins()[i];
            prop_assert!(x >= b.lo - 1e-9);
            // last bin is inclusive at the top
            prop_assert!(x < b.hi + 1e-9 || (i == 16 && x <= 100.0));
        }

        #[test]
        fn log_bin_index_matches_edges(x in 1.0f64..10_000.0) {
            let h = Histogram::logarithmic(1.0, 10_000.0, 13);
            let i = h.bin_index(x).unwrap();
            let b = h.bins()[i];
            prop_assert!(x >= b.lo * (1.0 - 1e-9));
            prop_assert!(x <= b.hi * (1.0 + 1e-9));
        }
    }
}

//! Mergeable streaming sketches for the out-of-core pipeline.
//!
//! The shape analyses only need exact numbers where the fidelity report
//! grades them; everywhere else a sketch with a *provable* error bound
//! is enough and keeps the fold state O(k) per shard. Two sketches live
//! here, both deterministic (no internal randomness, so shard merges are
//! reproducible) and both mergeable in any order:
//!
//! * [`QuantileSketch`] — a KLL-style compactor hierarchy over `u64`
//!   values. Each compaction of a full level keeps every second item of
//!   the sorted buffer (alternating offset) and promotes it with doubled
//!   weight; a compaction at level `l` can shift any rank by at most the
//!   level weight `2^l`, and the sketch *accounts* each one, so
//!   [`QuantileSketch::rank_error_bound`] is a rigorous (conservative)
//!   bound on the absolute rank error of any reported quantile — zero
//!   while the sketch has never compacted.
//! * [`SpaceSaving`] — Metwally et al.'s heavy-hitter summary. Every
//!   estimate over-counts by at most its recorded `overcount`, and any
//!   key whose true count exceeds [`SpaceSaving::min_count`] is
//!   guaranteed present, a property the merge preserves.

use std::collections::BTreeMap;

/// Deterministic KLL-style quantile sketch over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    k: usize,
    /// `levels[l]` holds items of weight `2^l`, unsorted between
    /// compactions.
    levels: Vec<Vec<u64>>,
    /// Per-level parity of the next compaction (alternates which half of
    /// the sorted buffer survives, bounding drift in expectation and —
    /// for the accounting below — deterministically).
    parity: Vec<bool>,
    n: u64,
    error_mass: u64,
}

impl QuantileSketch {
    /// A sketch keeping at most `k` items per level (`k` is clamped to
    /// at least 8). Memory is O(k · log(n/k)).
    pub fn new(k: usize) -> QuantileSketch {
        QuantileSketch {
            k: k.max(8),
            levels: vec![Vec::new()],
            parity: vec![false],
            n: 0,
            error_mass: 0,
        }
    }

    /// Number of values offered.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Offers one value.
    pub fn offer(&mut self, value: u64) {
        self.levels[0].push(value);
        self.n += 1;
        self.compact_from(0);
    }

    fn compact_from(&mut self, mut level: usize) {
        while self.levels[level].len() >= self.k {
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
                self.parity.push(false);
            }
            let mut buffer = std::mem::take(&mut self.levels[level]);
            buffer.sort_unstable();
            // An odd buffer keeps its largest item at this level so
            // total weight is conserved exactly; pairs compact below.
            if buffer.len() % 2 == 1 {
                let leftover = buffer.pop().expect("odd buffer is nonempty");
                self.levels[level].push(leftover);
            }
            let offset = usize::from(self.parity[level]);
            self.parity[level] = !self.parity[level];
            let promoted: Vec<u64> = buffer
                .into_iter()
                .enumerate()
                .filter_map(|(i, v)| (i % 2 == offset).then_some(v))
                .collect();
            self.levels[level + 1].extend(promoted);
            // One compaction of adjacent weight-2^l pairs misplaces any
            // rank by at most 2^l: only the pair straddling the queried
            // value can err, and by exactly one item weight.
            self.error_mass += 1u64 << level.min(62);
            level += 1;
        }
    }

    /// Merges `other` into `self`. Merge is order-insensitive up to the
    /// accounted error bound: both orders yield a sketch whose reported
    /// quantiles are within the (summed) bound of exact.
    pub fn merge(&mut self, other: &QuantileSketch) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.parity.push(false);
        }
        for (level, items) in other.levels.iter().enumerate() {
            self.levels[level].extend_from_slice(items);
        }
        self.n += other.n;
        self.error_mass += other.error_mass;
        for level in 0..self.levels.len() {
            self.compact_from(level);
        }
    }

    /// All retained `(value, weight)` pairs, sorted by value.
    fn materialize(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        for (level, items) in self.levels.iter().enumerate() {
            let weight = 1u64 << level.min(62);
            pairs.extend(items.iter().map(|&v| (v, weight)));
        }
        pairs.sort_unstable();
        pairs
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), or `None` on an
    /// empty sketch. With no compactions this is the exact empirical
    /// quantile; otherwise its *rank* is within
    /// [`rank_error_bound`](Self::rank_error_bound) of exact.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut seen = 0u64;
        let pairs = self.materialize();
        for &(value, weight) in &pairs {
            seen += weight;
            if seen >= target {
                return Some(value);
            }
        }
        pairs.last().map(|&(value, _)| value)
    }

    /// Absolute rank-error bound of any reported quantile: the summed
    /// weight displaced by every compaction so far (0 ⇒ exact).
    pub fn rank_error_bound(&self) -> u64 {
        self.error_mass
    }

    /// [`rank_error_bound`](Self::rank_error_bound) as a fraction of the
    /// stream length (0.0 on an empty sketch).
    pub fn relative_error_bound(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.error_mass as f64 / self.n as f64
        }
    }
}

/// SpaceSaving heavy-hitter summary over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    capacity: usize,
    /// key → (estimated count, overcount at adoption).
    entries: BTreeMap<u64, (u64, u64)>,
    total: u64,
}

impl SpaceSaving {
    /// A summary tracking at most `capacity` keys (clamped to ≥ 1).
    pub fn new(capacity: usize) -> SpaceSaving {
        SpaceSaving {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            total: 0,
        }
    }

    /// Offers `weight` occurrences of `key`.
    pub fn offer(&mut self, key: u64, weight: u64) {
        self.total += weight;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.0 += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, (weight, 0));
            return;
        }
        // Evict the (count, key)-minimal entry; the newcomer inherits
        // its count as overcount — the classic SpaceSaving step.
        let (&victim_key, &(victim_count, _)) = self
            .entries
            .iter()
            .min_by_key(|(&k, &(count, _))| (count, k))
            .expect("capacity >= 1");
        self.entries.remove(&victim_key);
        self.entries
            .insert(key, (victim_count + weight, victim_count));
    }

    /// Merges `other` into `self`, then trims back to capacity keeping
    /// the largest estimates. Keys absent from one side gain that side's
    /// [`min_count`](Self::min_count) as extra estimate *and* overcount,
    /// which preserves both guarantees (estimate ≥ true ≥ estimate −
    /// overcount) under merge.
    pub fn merge(&mut self, other: &SpaceSaving) {
        let self_floor = if self.entries.len() < self.capacity {
            0
        } else {
            self.min_count()
        };
        let other_floor = if other.entries.len() < other.capacity {
            0
        } else {
            other.min_count()
        };
        let mut merged: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for (&key, &(count, over)) in &self.entries {
            let (extra, extra_over) = match other.entries.get(&key) {
                Some(&(c, o)) => (c, o),
                None => (other_floor, other_floor),
            };
            merged.insert(key, (count + extra, over + extra_over));
        }
        for (&key, &(count, over)) in &other.entries {
            merged
                .entry(key)
                .or_insert((count + self_floor, over + self_floor));
        }
        // Trim to capacity, keeping the largest estimates (ties broken
        // toward smaller keys so the result is deterministic).
        while merged.len() > self.capacity {
            let (&victim, _) = merged
                .iter()
                .min_by_key(|(&k, &(count, _))| (count, k))
                .expect("nonempty");
            merged.remove(&victim);
        }
        self.entries = merged;
        self.total += other.total;
    }

    /// Total weight offered (exact).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The smallest estimate currently tracked (0 when under capacity).
    /// Any key with true count strictly above this is guaranteed
    /// present in the summary.
    pub fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity {
            return 0;
        }
        self.entries
            .values()
            .map(|&(count, _)| count)
            .min()
            .unwrap_or(0)
    }

    /// Full state as `(entries, total)`, entries sorted by key as
    /// `(key, estimate, overcount)` — the checkpoint form a resumable
    /// fold writes to disk. [`SpaceSaving::restore`] inverts it exactly.
    pub fn snapshot(&self) -> (Vec<(u64, u64, u64)>, u64) {
        let entries = self
            .entries
            .iter()
            .map(|(&key, &(count, over))| (key, count, over))
            .collect();
        (entries, self.total)
    }

    /// Rebuilds a summary from a [`SpaceSaving::snapshot`]. Entries past
    /// `capacity` are ignored (a snapshot from a larger summary keeps
    /// its largest estimates).
    pub fn restore(capacity: usize, entries: &[(u64, u64, u64)], total: u64) -> SpaceSaving {
        let mut summary = SpaceSaving::new(capacity);
        let mut sorted: Vec<(u64, u64, u64)> = entries.to_vec();
        sorted.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        sorted.truncate(summary.capacity);
        for (key, count, over) in sorted {
            summary.entries.insert(key, (count, over));
        }
        summary.total = total;
        summary
    }

    /// The top `k` keys as `(key, estimate, overcount)`, sorted by
    /// estimate descending then key ascending. `estimate` never
    /// undercounts; `estimate - overcount` never overcounts.
    pub fn top(&self, k: usize) -> Vec<(u64, u64, u64)> {
        let mut all: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .map(|(&key, &(count, over))| (key, count, over))
            .collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[target - 1]
    }

    #[test]
    fn small_streams_are_exact() {
        let mut sketch = QuantileSketch::new(64);
        let values = [9u64, 1, 5, 3, 7];
        for v in values {
            sketch.offer(v);
        }
        assert_eq!(sketch.rank_error_bound(), 0, "no compaction yet");
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(sketch.quantile(q), Some(exact_quantile(&sorted, q)));
        }
        assert_eq!(QuantileSketch::new(8).quantile(0.5), None);
    }

    #[test]
    fn rank_error_stays_within_bound_on_large_streams() {
        let mut sketch = QuantileSketch::new(128);
        let mut values: Vec<u64> = (0..50_000u64)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .collect();
        for &v in &values {
            sketch.offer(v);
        }
        values.sort_unstable();
        let bound = sketch.rank_error_bound();
        assert!(bound > 0, "this stream must have compacted");
        assert!(
            sketch.relative_error_bound() < 0.30,
            "advertised bound unusably loose: {}",
            sketch.relative_error_bound()
        );
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let approx = sketch.quantile(q).unwrap();
            // True rank window of the reported value.
            let lo = values.partition_point(|&v| v < approx) as u64;
            let hi = values.partition_point(|&v| v <= approx) as u64;
            let target = ((q * values.len() as f64).ceil() as u64).clamp(1, values.len() as u64);
            let rank_err = if target < lo {
                lo - target
            } else if target > hi {
                target - hi
            } else {
                0
            };
            assert!(
                rank_err <= bound,
                "q={q}: rank error {rank_err} exceeds advertised bound {bound}"
            );
        }
    }

    #[test]
    fn merge_accumulates_counts_and_bounds() {
        let mut a = QuantileSketch::new(64);
        let mut b = QuantileSketch::new(64);
        for i in 0..5000u64 {
            a.offer(i);
            b.offer(10_000 - i);
        }
        let (na, nb) = (a.count(), b.count());
        let bound_sum = a.rank_error_bound() + b.rank_error_bound();
        a.merge(&b);
        assert_eq!(a.count(), na + nb);
        assert!(a.rank_error_bound() >= bound_sum);
        let median = a.quantile(0.5).unwrap();
        assert!((4000..=6000).contains(&median), "median {median}");
    }

    #[test]
    fn space_saving_estimates_bracket_truth() {
        let mut ss = SpaceSaving::new(4);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        // 3 heavy keys + a tail of singletons.
        let stream: Vec<u64> = (0..300u64)
            .map(|i| match i % 10 {
                0..=4 => 1,
                5..=7 => 2,
                8 => 3,
                _ => 100 + i,
            })
            .collect();
        for &key in &stream {
            ss.offer(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        assert_eq!(ss.total(), stream.len() as u64);
        for (key, est, over) in ss.top(4) {
            let true_count = truth.get(&key).copied().unwrap_or(0);
            assert!(est >= true_count, "estimate must not undercount");
            assert!(est - over <= true_count, "guaranteed part overcounts");
        }
        // Heavy keys are guaranteed present.
        for heavy in [1u64, 2] {
            assert!(truth[&heavy] > ss.min_count());
            assert!(ss.top(4).iter().any(|&(k, _, _)| k == heavy));
        }
    }

    #[test]
    fn space_saving_merge_preserves_guarantees() {
        let mut left = SpaceSaving::new(3);
        let mut right = SpaceSaving::new(3);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..200u64 {
            let key = if i % 3 == 0 { 7 } else { i % 20 };
            if i % 2 == 0 {
                left.offer(key, 1);
            } else {
                right.offer(key, 1);
            }
            *truth.entry(key).or_default() += 1;
        }
        left.merge(&right);
        assert_eq!(left.total(), 200);
        for (key, est, over) in left.top(3) {
            let true_count = truth.get(&key).copied().unwrap_or(0);
            assert!(est >= true_count);
            assert!(est - over <= true_count);
        }
        assert!(left.top(1)[0].0 == 7, "dominant key must survive the merge");
    }
}

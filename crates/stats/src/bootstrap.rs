//! Nonparametric bootstrap confidence intervals.
//!
//! Used to attach uncertainty to statistics whose sampling distribution is
//! awkward analytically (median affinity, Gini of developer income, Pareto
//! shares), by resampling the data with replacement.

use appstore_core::Seed;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A bootstrap percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

/// Percentile bootstrap interval for `statistic` at confidence `level`
/// (e.g. 0.95), using `replicates` resamples.
///
/// The statistic receives a resampled slice and may return `None` for
/// degenerate resamples; those replicates are dropped. Returns `None` if
/// the original sample is empty, the statistic fails on it, or every
/// replicate is degenerate.
///
/// # Panics
/// Panics if `level` is outside `(0, 1)` or `replicates == 0`.
pub fn bootstrap_ci<F>(
    sample: &[f64],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: Seed,
) -> Option<BootstrapInterval>
where
    F: Fn(&[f64]) -> Option<f64>,
{
    assert!(replicates > 0, "need at least one replicate");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );
    if sample.is_empty() {
        return None;
    }
    let estimate = statistic(sample)?;
    let mut rng = seed.rng();
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; sample.len()];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = sample[rng.gen_range(0..sample.len())];
        }
        if let Some(s) = statistic(&resample) {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return None;
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistic returned NaN"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * stats.len() as f64).floor() as usize).min(stats.len() - 1);
    let hi_idx = (((1.0 - alpha) * stats.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(stats.len() - 1);
    Some(BootstrapInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        replicates: stats.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::mean;

    #[test]
    fn interval_brackets_the_estimate() {
        let sample: Vec<f64> = (0..200).map(|i| (i % 23) as f64).collect();
        let ci = bootstrap_ci(&sample, mean, 500, 0.95, Seed::new(7)).unwrap();
        assert!(ci.lo <= ci.estimate);
        assert!(ci.estimate <= ci.hi);
        assert_eq!(ci.replicates, 500);
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 7) as f64).collect();
        let ci_small = bootstrap_ci(&small, mean, 300, 0.95, Seed::new(1)).unwrap();
        let ci_large = bootstrap_ci(&large, mean, 300, 0.95, Seed::new(1)).unwrap();
        assert!(ci_large.hi - ci_large.lo < ci_small.hi - ci_small.lo);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let sample: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&sample, mean, 100, 0.9, Seed::new(5)).unwrap();
        let b = bootstrap_ci(&sample, mean, 100, 0.9, Seed::new(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_gives_none() {
        assert!(bootstrap_ci(&[], mean, 10, 0.95, Seed::new(0)).is_none());
    }

    #[test]
    fn degenerate_statistic_gives_none() {
        let sample = [1.0, 2.0];
        let none_stat = |_: &[f64]| -> Option<f64> { None };
        assert!(bootstrap_ci(&sample, none_stat, 10, 0.95, Seed::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_panics() {
        let _ = bootstrap_ci(&[1.0], mean, 10, 1.5, Seed::new(0));
    }
}

#[cfg(test)]
mod gini_bootstrap_tests {
    use super::*;

    /// Bootstrap works with non-mean statistics: the Gini coefficient of
    /// developer incomes (Fig. 13's concentration claim) gets a CI.
    #[test]
    fn gini_interval_is_sane() {
        // Heavily skewed sample: one giant, many tiny values.
        let mut sample = vec![1.0f64; 99];
        sample.push(10_000.0);
        let gini_stat = |xs: &[f64]| {
            let counts: Vec<u64> = xs.iter().map(|&x| x as u64).collect();
            crate::pareto::gini(&counts)
        };
        let ci = bootstrap_ci(&sample, gini_stat, 300, 0.95, Seed::new(13)).unwrap();
        assert!(ci.estimate > 0.9, "skewed Gini {}", ci.estimate);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi <= 1.0 + 1e-9);
    }
}

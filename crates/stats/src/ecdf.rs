//! Empirical cumulative distribution functions.
//!
//! Half the paper's figures are CDFs (Figs. 2, 4, 5, 7, 13, 16). [`Ecdf`]
//! stores the sorted sample once and answers `P(X ≤ x)`, complementary
//! probabilities, quantiles and evaluation grids.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// ```
/// use appstore_stats::Ecdf;
///
/// let downloads = [10.0, 400.0, 25.0, 12.0];
/// let ecdf = Ecdf::new(&downloads);
/// assert_eq!(ecdf.eval(25.0), 0.75);        // P(X <= 25)
/// assert_eq!(ecdf.median(), Some(12.0));
/// assert_eq!(ecdf.ccdf(399.0), 0.25);       // P(X > 399)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (copied and sorted; NaNs rejected).
    ///
    /// # Panics
    /// Panics if the sample contains a NaN.
    pub fn new(sample: &[f64]) -> Ecdf {
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        let mut sorted = sample.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ecdf { sorted }
    }

    /// Builds an ECDF from integer counts (a common case: downloads,
    /// comments, updates).
    pub fn from_counts<T: Copy + Into<u64>>(counts: &[T]) -> Ecdf {
        let sample: Vec<f64> = counts.iter().map(|&c| c.into() as f64).collect();
        Ecdf::new(&sample)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the ECDF was built from an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`. Returns 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Number of samples ≤ x == partition point of (v <= x).
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// The `q`-quantile for `q ∈ [0, 1]` (nearest-rank definition).
    /// Returns `None` on an empty sample.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The sample median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample value.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample value.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluates the CDF on a grid of `points` x-values spanning
    /// `[min, max]`, returning `(x, P(X ≤ x))` pairs — the series plotted
    /// in the paper's CDF figures.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.sorted[0], *self.sorted.last().expect("nonempty"));
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The full step-function support: each distinct sample value with its
    /// cumulative probability.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let v = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_on_known_sample() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.ccdf(2.0), 0.25);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(0.75), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(e.median(), Some(20.0));
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn from_counts() {
        let e = Ecdf::from_counts(&[3u32, 1, 2]);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn steps_collapse_duplicates() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        assert_eq!(e.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn curve_endpoints() {
        let e = Ecdf::new(&[0.0, 1.0, 2.0, 3.0]);
        let curve = e.curve(4);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0], (0.0, 0.25));
        assert_eq!(curve[3], (3.0, 1.0));
    }

    #[test]
    fn degenerate_sample_curve() {
        let e = Ecdf::new(&[5.0, 5.0]);
        assert_eq!(e.curve(10), vec![(5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = Ecdf::new(&[1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let e = Ecdf::new(&xs);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for &x in &xs {
                let p = e.eval(x);
                prop_assert!(p >= prev - 1e-12);
                prop_assert!((0.0..=1.0).contains(&p));
                prev = p;
            }
            prop_assert_eq!(e.eval(xs[xs.len() - 1]), 1.0);
        }

        #[test]
        fn quantile_inverts_cdf(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), q in 0.0f64..=1.0) {
            let e = Ecdf::new(&xs);
            let v = e.quantile(q).unwrap();
            // CDF at the q-quantile must be at least q.
            prop_assert!(e.eval(v) + 1e-12 >= q);
        }
    }
}

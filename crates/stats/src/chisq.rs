//! Pearson's chi-squared goodness-of-fit test.
//!
//! Used to check that a sampler's empirical draw frequencies match an
//! analytic pmf (e.g. that the alias-table and inverse-CDF Zipf samplers
//! both reproduce `P(rank = k) ∝ k^(−s)`), complementing the two-sample
//! KS test in [`crate::kstest`] which compares samplers against each
//! other.

use serde::{Deserialize, Serialize};

/// Result of a chi-squared goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquared {
    /// The statistic `X² = Σ (O_i − E_i)² / E_i` over the used bins.
    pub statistic: f64,
    /// Degrees of freedom (used bins − 1).
    pub degrees: usize,
    /// Upper-tail p-value `P(χ²_df ≥ X²)`.
    pub p_value: f64,
    /// Number of bins actually used after low-expectation pooling.
    pub bins: usize,
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, |error| < 2e-10).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut ser = 1.000_000_000_190_015;
    let mut denom = x;
    for c in COEFFS {
        denom += 1.0;
        ser += c / denom;
    }
    let tmp = x + 5.5;
    (x + 0.5) * tmp.ln() - tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (converges fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction
/// (converges fast for `x >= a + 1`; modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-14 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Upper-tail probability of the chi-squared distribution:
/// `P(χ²_df ≥ x) = Q(df/2, x/2)`.
///
/// Returns 1 for `x <= 0`.
pub fn chi_squared_survival(degrees: usize, x: f64) -> f64 {
    if x <= 0.0 || degrees == 0 {
        return 1.0;
    }
    let a = degrees as f64 / 2.0;
    let half = x / 2.0;
    let q = if half < a + 1.0 {
        1.0 - gamma_p_series(a, half)
    } else {
        gamma_q_cf(a, half)
    };
    q.clamp(0.0, 1.0)
}

/// Chi-squared goodness-of-fit of observed bin counts against expected
/// bin counts.
///
/// Bins with an expected count below `min_expected` are pooled into their
/// successor (and a trailing low-expectation remainder into the last used
/// bin), per the usual validity rule for the chi-squared approximation
/// (`min_expected` of 5 is the textbook choice). `observed` and
/// `expected` must have equal lengths; expected counts must be positive.
///
/// Returns `None` if fewer than two pooled bins remain or the inputs are
/// degenerate (mismatched lengths, nonpositive/nonfinite expectations).
pub fn chi_squared_gof(
    observed: &[u64],
    expected: &[f64],
    min_expected: f64,
) -> Option<ChiSquared> {
    if observed.len() != expected.len() || observed.is_empty() {
        return None;
    }
    if expected.iter().any(|&e| !e.is_finite() || e <= 0.0) {
        return None;
    }
    // Pool adjacent bins until each pooled bin's expectation clears the
    // threshold; a final under-threshold remainder merges backwards.
    let mut pooled: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_o += o as f64;
        acc_e += e;
        if acc_e >= min_expected {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_o;
            last.1 += acc_e;
        }
    }
    if pooled.len() < 2 {
        return None;
    }
    let statistic: f64 = pooled
        .iter()
        .map(|&(o, e)| {
            let diff = o - e;
            diff * diff / e
        })
        .sum();
    let degrees = pooled.len() - 1;
    Some(ChiSquared {
        statistic,
        degrees,
        p_value: chi_squared_survival(degrees, statistic),
        bins: pooled.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use appstore_core::Seed;
    use rand::Rng;

    #[test]
    fn survival_matches_known_critical_values() {
        // Textbook 5% critical values.
        for (df, crit) in [(1, 3.841), (2, 5.991), (5, 11.070), (10, 18.307)] {
            let p = chi_squared_survival(df, crit);
            assert!((p - 0.05).abs() < 2e-3, "df {df}: p = {p}");
        }
        // Median of χ²_2 is 2 ln 2.
        let p = chi_squared_survival(2, 2.0 * 2f64.ln());
        assert!((p - 0.5).abs() < 1e-10);
    }

    #[test]
    fn survival_edge_cases() {
        assert_eq!(chi_squared_survival(3, 0.0), 1.0);
        assert_eq!(chi_squared_survival(3, -1.0), 1.0);
        assert!(chi_squared_survival(1, 1e4) < 1e-12);
    }

    #[test]
    fn exact_match_gives_p_one() {
        let expected = [100.0, 200.0, 300.0];
        let observed = [100u64, 200, 300];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert_eq!(t.degrees, 2);
        assert!(t.p_value > 0.999);
    }

    #[test]
    fn gross_mismatch_is_rejected() {
        let expected = [100.0, 100.0, 100.0, 100.0];
        let observed = [10u64, 390, 0, 0];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.p_value < 1e-10, "p = {}", t.p_value);
    }

    #[test]
    fn low_expectation_bins_are_pooled() {
        // Tail expectations of 1 each: must pool, not divide by tiny E.
        let expected = [50.0, 30.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let observed = [50u64, 30, 1, 1, 1, 1, 1];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert_eq!(t.bins, 3, "head, head, pooled tail");
        assert_eq!(t.statistic, 0.0);
    }

    #[test]
    fn degenerate_inputs_give_none() {
        assert!(chi_squared_gof(&[], &[], 5.0).is_none());
        assert!(chi_squared_gof(&[1], &[1.0, 2.0], 5.0).is_none());
        assert!(chi_squared_gof(&[1, 2], &[1.0, 0.0], 5.0).is_none());
        assert!(chi_squared_gof(&[1, 2], &[1.0, f64::NAN], 5.0).is_none());
        // Everything pools into one bin -> no degrees of freedom.
        assert!(chi_squared_gof(&[1, 1], &[1.0, 1.0], 5.0).is_none());
    }

    #[test]
    fn zero_count_pooled_bins_stay_finite() {
        // Observed counts of zero in bins with real expectation must
        // contribute (0 − E)²/E, never NaN — including when several
        // zero-count bins pool together.
        let expected = [50.0, 50.0, 3.0, 3.0];
        let observed = [60u64, 46, 0, 0];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.statistic.is_finite(), "statistic = {}", t.statistic);
        assert!(!t.statistic.is_nan());
        assert!(t.p_value.is_finite());
        assert_eq!(t.bins, 3, "the two E=3 bins pool into one");
        // Pooled zero bin contributes (0 − 6)² / 6 = 6.
        assert!((t.statistic - (100.0 / 50.0 + 16.0 / 50.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn single_bin_input_is_an_error() {
        // One bin means zero degrees of freedom: must refuse, not NaN.
        assert!(chi_squared_gof(&[100], &[100.0], 5.0).is_none());
    }

    #[test]
    fn dof_zero_after_pooling_is_an_error() {
        // Many bins, but expectations so small everything pools into a
        // single bin -> dof would be 0; must return None rather than a
        // degenerate statistic.
        let expected = [1.0, 1.0, 1.0, 1.0];
        let observed = [1u64, 1, 1, 1];
        assert!(chi_squared_gof(&observed, &expected, 5.0).is_none());
        // Same with a huge pooling threshold over healthy expectations.
        let expected = [100.0, 100.0, 100.0];
        let observed = [100u64, 100, 100];
        assert!(chi_squared_gof(&observed, &expected, 1e6).is_none());
    }

    #[test]
    fn all_zero_observed_is_finite_and_rejected() {
        // Every observation zero against positive expectations: the
        // statistic is Σ E_i — finite — and the fit is firmly rejected.
        let expected = [50.0, 50.0, 50.0];
        let observed = [0u64, 0, 0];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert!((t.statistic - 150.0).abs() < 1e-12);
        assert!(!t.p_value.is_nan());
        assert!(t.p_value < 1e-12);
    }

    #[test]
    fn uniform_draws_are_not_rejected() {
        let mut rng = Seed::new(17).rng();
        let bins = 20usize;
        let n = 100_000u64;
        let mut observed = vec![0u64; bins];
        for _ in 0..n {
            observed[rng.gen_range(0..bins)] += 1;
        }
        let expected = vec![n as f64 / bins as f64; bins];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert_eq!(t.degrees, bins - 1);
        assert!(t.p_value > 0.01, "false rejection: p = {}", t.p_value);
    }

    #[test]
    fn shifted_distribution_is_rejected() {
        let mut rng = Seed::new(18).rng();
        let bins = 10usize;
        let n = 50_000u64;
        let mut observed = vec![0u64; bins];
        for _ in 0..n {
            // Mild but systematic skew away from uniform.
            let u: f64 = rng.gen();
            observed[((u * u) * bins as f64) as usize % bins] += 1;
        }
        let expected = vec![n as f64 / bins as f64; bins];
        let t = chi_squared_gof(&observed, &expected, 5.0).unwrap();
        assert!(t.p_value < 1e-6, "missed skew: p = {}", t.p_value);
    }
}

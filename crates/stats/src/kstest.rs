//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used to compare empirical distributions across stores and between
//! generated and crawled data (e.g. "do Anzhi and AppChina share a
//! download-per-app distribution?"), complementing the rank-aligned
//! distances in [`crate::distance`].

use serde::{Deserialize, Serialize};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D = sup |F1 − F2|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation;
    /// accurate for samples larger than ~25 each).
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

/// Asymptotic Kolmogorov survival function `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample KS test. Returns `None` if either sample is empty or
/// contains NaN.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Option<KsTest> {
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    if xs.iter().chain(ys).any(|v| v.is_nan()) {
        return None;
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_unstable_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    b.sort_unstable_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    let (n1, n2) = (a.len(), b.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = a[i].min(b[j]);
        while i < n1 && a[i] <= x {
            i += 1;
        }
        while j < n2 && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    let ne = (n1 as f64 * n2 as f64) / (n1 as f64 + n2 as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n1,
        n2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use appstore_core::Seed;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = ks_two_sample(&xs, &xs).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!(t.p_value > 0.99);
    }

    #[test]
    fn disjoint_samples_have_unit_statistic() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = (100..150).map(|i| i as f64).collect();
        let t = ks_two_sample(&xs, &ys).unwrap();
        assert!((t.statistic - 1.0).abs() < 1e-12);
        assert!(t.p_value < 1e-6);
    }

    #[test]
    fn same_distribution_is_not_rejected() {
        let mut rng = Seed::new(61).rng();
        let xs: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..400).map(|_| rng.gen::<f64>()).collect();
        let t = ks_two_sample(&xs, &ys).unwrap();
        assert!(t.p_value > 0.01, "false rejection: p = {}", t.p_value);
    }

    #[test]
    fn shifted_distribution_is_rejected() {
        let mut rng = Seed::new(62).rng();
        let xs: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() + 0.3).collect();
        let t = ks_two_sample(&xs, &ys).unwrap();
        assert!(t.p_value < 0.001, "missed shift: p = {}", t.p_value);
    }

    #[test]
    fn known_small_sample_statistic() {
        // F1 jumps at 1,2,3; F2 at 2,3,4: D = 1/3 at x in [1,2).
        let t = ks_two_sample(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).unwrap();
        assert!((t.statistic - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_none());
    }

    proptest! {
        #[test]
        fn statistic_bounded(xs in proptest::collection::vec(-1e3f64..1e3, 1..80),
                             ys in proptest::collection::vec(-1e3f64..1e3, 1..80)) {
            let t = ks_two_sample(&xs, &ys).unwrap();
            prop_assert!((0.0..=1.0).contains(&t.statistic));
            prop_assert!((0.0..=1.0).contains(&t.p_value));
        }

        #[test]
        fn symmetric(xs in proptest::collection::vec(-1e2f64..1e2, 1..50),
                     ys in proptest::collection::vec(-1e2f64..1e2, 1..50)) {
            let a = ks_two_sample(&xs, &ys).unwrap();
            let b = ks_two_sample(&ys, &xs).unwrap();
            prop_assert!((a.statistic - b.statistic).abs() < 1e-12);
        }
    }
}

//! Concentration measures: top-shares, Lorenz curves, Gini.
//!
//! The paper's first result (Fig. 2) is a Pareto statement — "10% of the
//! apps account for 70–90% of the downloads" — and its income analysis
//! (Fig. 13) is another concentration story. These helpers quantify both.

/// Fraction of the total mass held by the top `fraction` of items.
///
/// `counts` need not be sorted. `fraction` is clamped to `[0, 1]`; the
/// number of top items is `ceil(fraction · n)` with a minimum of one item
/// for any positive fraction. Returns `None` on empty input or zero total.
pub fn top_share(counts: &[u64], fraction: f64) -> Option<f64> {
    if counts.is_empty() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    if fraction == 0.0 {
        return Some(0.0);
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((fraction * counts.len() as f64).ceil() as usize).max(1);
    let top: u64 = sorted.iter().take(k).sum();
    Some(top as f64 / total as f64)
}

/// The cumulative-share curve of Figure 2: for each of `points` evenly
/// spaced rank fractions `x ∈ (0, 1]`, the fraction of total mass held by
/// the top `x` of items. Returns `(x, share)` pairs.
pub fn top_share_curve(counts: &[u64], points: usize) -> Vec<(f64, f64)> {
    if counts.is_empty() || points == 0 {
        return Vec::new();
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let prefix: Vec<u64> = sorted
        .iter()
        .scan(0u64, |acc, &c| {
            *acc += c;
            Some(*acc)
        })
        .collect();
    (1..=points)
        .map(|i| {
            let x = i as f64 / points as f64;
            let k = ((x * counts.len() as f64).ceil() as usize).clamp(1, counts.len());
            (x, prefix[k - 1] as f64 / total as f64)
        })
        .collect()
}

/// The Lorenz curve: `(population fraction, mass fraction)` points with
/// items sorted *ascending* (poorest first), prefixed by the origin.
pub fn lorenz_curve(counts: &[u64]) -> Vec<(f64, f64)> {
    if counts.is_empty() {
        return Vec::new();
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::with_capacity(sorted.len() + 1);
    out.push((0.0, 0.0));
    let mut acc = 0u64;
    for (i, &c) in sorted.iter().enumerate() {
        acc += c;
        out.push(((i + 1) as f64 / n, acc as f64 / total as f64));
    }
    out
}

/// Gini coefficient of a count vector (0 = equal, →1 = fully concentrated).
///
/// Returns `None` on empty input or zero total.
pub fn gini(counts: &[u64]) -> Option<f64> {
    if counts.is_empty() {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n with 1-based ascending i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    Some((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn top_share_known_values() {
        // 10 items; top item holds 91 of 100.
        let counts = [91, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        assert_eq!(top_share(&counts, 0.1), Some(0.91));
        assert_eq!(top_share(&counts, 1.0), Some(1.0));
        assert_eq!(top_share(&counts, 0.0), Some(0.0));
    }

    #[test]
    fn top_share_unsorted_input() {
        let counts = [1, 91, 1, 1, 1, 1, 1, 1, 1, 1];
        assert_eq!(top_share(&counts, 0.1), Some(0.91));
    }

    #[test]
    fn top_share_degenerate() {
        assert_eq!(top_share(&[], 0.5), None);
        assert_eq!(top_share(&[0, 0], 0.5), None);
        // Tiny positive fraction still takes at least one item.
        assert_eq!(top_share(&[10, 0], 0.0001), Some(1.0));
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let counts = [5, 3, 2, 2, 1, 1, 1, 1, 1, 1];
        let curve = top_share_curve(&counts, 10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve[9], (1.0, 1.0));
    }

    #[test]
    fn lorenz_endpoints() {
        let curve = lorenz_curve(&[1, 2, 3, 4]);
        assert_eq!(curve[0], (0.0, 0.0));
        assert_eq!(*curve.last().unwrap(), (1.0, 1.0));
        assert_eq!(curve[1], (0.25, 0.1));
    }

    #[test]
    fn gini_known_values() {
        // Perfect equality.
        assert!((gini(&[5, 5, 5, 5]).unwrap() - 0.0).abs() < 1e-12);
        // One holder of everything among 4: G = (n-1)/n = 0.75.
        assert!((gini(&[0, 0, 0, 100]).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0]), None);
    }

    proptest! {
        #[test]
        fn gini_bounded(counts in proptest::collection::vec(0u64..1000, 1..100)) {
            if let Some(g) = gini(&counts) {
                prop_assert!((-1e-9..=1.0).contains(&g));
            }
        }

        #[test]
        fn top_share_monotone_in_fraction(counts in proptest::collection::vec(1u64..1000, 1..100), f in 0.0f64..1.0) {
            let a = top_share(&counts, f).unwrap();
            let b = top_share(&counts, (f + 0.1).min(1.0)).unwrap();
            prop_assert!(b + 1e-12 >= a);
        }

        #[test]
        fn lorenz_below_diagonal(counts in proptest::collection::vec(0u64..1000, 1..100)) {
            for (x, y) in lorenz_curve(&counts) {
                prop_assert!(y <= x + 1e-9);
            }
        }
    }
}

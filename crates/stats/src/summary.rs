//! Moments and confidence intervals.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` on empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n − 1 denominator).
/// Returns `None` for fewer than two samples.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation. Returns `None` for fewer than two samples.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Mean with a normal-approximation 95% confidence interval
/// (`mean ± 1.96 · s/√n`), as plotted in the paper's Figure 6.
///
/// Returns `None` for fewer than two samples.
pub fn mean_ci95(xs: &[f64]) -> Option<(f64, f64)> {
    let m = mean(xs)?;
    let s = stddev(xs)?;
    let half = 1.96 * s / (xs.len() as f64).sqrt();
    Some((m, half))
}

/// A one-pass summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub stddev: f64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` on empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let sum: f64 = xs.iter().sum();
        let mean = sum / xs.len() as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n: xs.len(),
            min,
            max,
            mean,
            stddev: stddev(xs).unwrap_or(0.0),
            sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_sample() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_of_known_sample() {
        // Sample variance of 2, 4, 4, 4, 5, 5, 7, 9 is 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let narrow: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let wide: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (_, half_narrow) = mean_ci95(&narrow).unwrap();
        let (_, half_wide) = mean_ci95(&wide).unwrap();
        assert!(half_narrow < half_wide);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sum, 6.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_sample_has_zero_stddev() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
    }
}

//! Two-predictor least squares and the power-law-with-cutoff fit.
//!
//! The paper compares app popularity to user-generated video content,
//! whose popularity Cha et al. model as a *power law with exponential
//! cutoff*: `y(r) ∝ r^(−z) · e^(−r/k)`. In log space this is linear in
//! two predictors, `ln y = c − z·ln r − r/k`, so the fit is a small
//! multiple regression solved by the normal equations (3×3 Gaussian
//! elimination — no linear-algebra dependency needed).

use serde::{Deserialize, Serialize};

/// Result of a two-predictor OLS fit `y ≈ c + b1·x1 + b2·x2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ols2Fit {
    /// Intercept `c`.
    pub intercept: f64,
    /// Coefficient of the first predictor.
    pub b1: f64,
    /// Coefficient of the second predictor.
    pub b2: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl Ols2Fit {
    /// Predicted value at `(x1, x2)`.
    pub fn predict(&self, x1: f64, x2: f64) -> f64 {
        self.intercept + self.b1 * x1 + self.b2 * x2
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` for a singular system.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in (col + 1)..3 {
            let factor = a[row][col] / pivot_row[col];
            for (k, p) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Fits `y ≈ c + b1·x1 + b2·x2` by least squares.
///
/// Returns `None` when inputs differ in length, have fewer than three
/// points, or the design matrix is singular (e.g. collinear predictors).
pub fn ols2(x1s: &[f64], x2s: &[f64], ys: &[f64]) -> Option<Ols2Fit> {
    let n = ys.len();
    if x1s.len() != n || x2s.len() != n || n < 3 {
        return None;
    }
    // Normal equations: (XᵀX) β = Xᵀy with X = [1, x1, x2].
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for i in 0..n {
        let row = [1.0, x1s[i], x2s[i]];
        for a in 0..3 {
            for b in 0..3 {
                xtx[a][b] += row[a] * row[b];
            }
            xty[a] += row[a] * ys[i];
        }
    }
    let beta = solve3(xtx, xty)?;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..n {
        let pred = beta[0] + beta[1] * x1s[i] + beta[2] * x2s[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Ols2Fit {
        intercept: beta[0],
        b1: beta[1],
        b2: beta[2],
        r_squared,
        n,
    })
}

/// A fitted power law with exponential cutoff,
/// `y(r) = e^c · r^(−exponent) · e^(−r/cutoff)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CutoffFit {
    /// The power-law exponent `z`.
    pub exponent: f64,
    /// The cutoff rank `k` (`f64::INFINITY` when the fitted decay rate is
    /// non-positive, i.e. no cutoff).
    pub cutoff: f64,
    /// Log-space R² of the two-predictor fit.
    pub r_squared: f64,
    /// Number of ranks used.
    pub n: usize,
}

/// Fits `downloads(rank) ∝ rank^(−z)·e^(−rank/k)` to a descending count
/// vector. Zero counts are skipped. Returns `None` with fewer than three
/// nonzero ranks.
pub fn powerlaw_cutoff_fit(ranked: &[u64]) -> Option<CutoffFit> {
    let mut log_rank = Vec::new();
    let mut rank = Vec::new();
    let mut log_y = Vec::new();
    for (i, &c) in ranked.iter().enumerate() {
        if c > 0 {
            log_rank.push(((i + 1) as f64).ln());
            rank.push((i + 1) as f64);
            log_y.push((c as f64).ln());
        }
    }
    let fit = ols2(&log_rank, &rank, &log_y)?;
    let decay = -fit.b2;
    Some(CutoffFit {
        exponent: -fit.b1,
        cutoff: if decay > 0.0 {
            1.0 / decay
        } else {
            f64::INFINITY
        },
        r_squared: fit.r_squared,
        n: fit.n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::zipf_fit_loglog;
    use proptest::prelude::*;

    #[test]
    fn exact_plane_recovered() {
        // y = 2 + 3·x1 − 0.5·x2 on a grid.
        let mut x1s = Vec::new();
        let mut x2s = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                x1s.push(i as f64);
                x2s.push(j as f64);
                ys.push(2.0 + 3.0 * i as f64 - 0.5 * j as f64);
            }
        }
        let fit = ols2(&x1s, &x2s, &ys).unwrap();
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.b1 - 3.0).abs() < 1e-9);
        assert!((fit.b2 + 0.5).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(2.0, 4.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_predictors_rejected() {
        let x1s = [1.0, 2.0, 3.0, 4.0];
        let x2s = [2.0, 4.0, 6.0, 8.0]; // 2·x1
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert!(ols2(&x1s, &x2s, &ys).is_none());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ols2(&[1.0], &[1.0], &[1.0]).is_none());
        assert!(ols2(&[1.0, 2.0], &[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn cutoff_fit_recovers_synthetic_parameters() {
        // y(r) = 1e9 · r^(-1.2) · e^(-r/300)
        let ranked: Vec<u64> = (1..=2_000u64)
            .map(|r| {
                let y = 1e9 * (r as f64).powf(-1.2) * (-(r as f64) / 300.0).exp();
                y as u64
            })
            .collect();
        let fit = powerlaw_cutoff_fit(&ranked).unwrap();
        assert!((fit.exponent - 1.2).abs() < 0.05, "z = {}", fit.exponent);
        assert!(
            (fit.cutoff - 300.0).abs() / 300.0 < 0.1,
            "k = {}",
            fit.cutoff
        );
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn pure_zipf_yields_infinite_cutoff_and_no_gain() {
        let ranked: Vec<u64> = (1..=1_000u64)
            .map(|r| (1e9 * (r as f64).powf(-1.4)) as u64)
            .collect();
        let cutoff = powerlaw_cutoff_fit(&ranked).unwrap();
        let plain = zipf_fit_loglog(&ranked).unwrap();
        // The cutoff term buys essentially nothing on pure Zipf data.
        assert!(cutoff.r_squared - plain.quality < 0.005);
        assert!(cutoff.cutoff > 1_000.0, "spurious cutoff {}", cutoff.cutoff);
    }

    #[test]
    fn cutoff_improves_fit_on_truncated_tails() {
        // Zipf trunk with an exponentially collapsing tail — the shape
        // the paper observes. The cutoff model must fit better.
        let ranked: Vec<u64> = (1..=2_000u64)
            .map(|r| {
                let y = 1e9 * (r as f64).powf(-1.0) * (-(r as f64) / 400.0).exp();
                y as u64
            })
            .collect();
        let cutoff = powerlaw_cutoff_fit(&ranked).unwrap();
        let plain = zipf_fit_loglog(&ranked).unwrap();
        assert!(
            cutoff.r_squared > plain.quality + 0.01,
            "cutoff r² {} vs plain {}",
            cutoff.r_squared,
            plain.quality
        );
    }

    proptest! {
        #[test]
        fn ols2_residuals_orthogonal(rows in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -100.0f64..100.0), 4..60)) {
            let x1s: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let x2s: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let ys: Vec<f64> = rows.iter().map(|r| r.2).collect();
            if let Some(fit) = ols2(&x1s, &x2s, &ys) {
                // Normal-equation property: residuals orthogonal to each
                // design column (up to numerical tolerance).
                let resid: Vec<f64> = (0..ys.len())
                    .map(|i| ys[i] - fit.predict(x1s[i], x2s[i]))
                    .collect();
                let dot0: f64 = resid.iter().sum();
                let dot1: f64 = resid.iter().zip(&x1s).map(|(r, x)| r * x).sum();
                let dot2: f64 = resid.iter().zip(&x2s).map(|(r, x)| r * x).sum();
                let scale = 1.0 + ys.iter().map(|y| y.abs()).sum::<f64>();
                prop_assert!(dot0.abs() / scale < 1e-6);
                prop_assert!(dot1.abs() / (scale * 10.0) < 1e-6);
                prop_assert!(dot2.abs() / (scale * 10.0) < 1e-6);
            }
        }
    }
}

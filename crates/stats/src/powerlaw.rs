//! Zipf / power-law fitting on ranked count data.
//!
//! The paper characterizes popularity curves by the exponent of
//! `downloads(rank) ∝ rank^(−z)` (Fig. 3 reports z ≈ 1.42, 1.51, 0.92,
//! 0.90; Fig. 11 reports 0.85 for free and 1.72 for paid SlideMe apps).
//! Two estimators are provided:
//!
//! * [`zipf_fit_loglog`] — least squares on `log rank` vs `log count`,
//!   the estimator the paper's figures correspond to;
//! * [`zipf_fit_mle`] — discrete maximum likelihood for a finite-support
//!   Zipf law (the exponent that maximizes the likelihood of observing the
//!   measured download *shares*), solved by golden-section search on the
//!   concave log-likelihood.
//!
//! [`generalized_harmonic`] provides the normalizing constant
//! `H(N, s) = Σ_{k=1..N} k^(−s)` used by both the MLE and the model
//! simulators.

use crate::regression::ols;
use serde::{Deserialize, Serialize};

/// Generalized harmonic number `H(n, s) = Σ_{k=1..n} k^(−s)`.
///
/// Returns 0 for `n == 0`.
pub fn generalized_harmonic(n: usize, s: f64) -> f64 {
    (1..=n).map(|k| (k as f64).powf(-s)).sum()
}

/// Probability of rank `k` (1-based) under a finite Zipf law with exponent
/// `s` over `n` ranks.
///
/// # Panics
/// Panics if `k` is 0 or greater than `n`.
pub fn zipf_pmf(k: usize, n: usize, s: f64) -> f64 {
    assert!(k >= 1 && k <= n, "rank {k} outside 1..={n}");
    (k as f64).powf(-s) / generalized_harmonic(n, s)
}

/// The result of a power-law fit to ranked counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Estimated Zipf exponent (the negated log-log slope).
    pub exponent: f64,
    /// Fit quality: R² for the log-log fit, normalized log-likelihood for
    /// the MLE.
    pub quality: f64,
    /// Number of ranks used in the fit.
    pub n: usize,
}

/// Fits a Zipf exponent by least squares on the log-log rank/count curve.
///
/// `ranked` must be in descending order (rank 1 first). Zero counts are
/// skipped (they have no logarithm); ranks keep their original position so
/// a truncated tail does not bias the head. Returns `None` if fewer than
/// two nonzero counts remain.
pub fn zipf_fit_loglog(ranked: &[u64]) -> Option<PowerLawFit> {
    let mut log_rank = Vec::with_capacity(ranked.len());
    let mut log_count = Vec::with_capacity(ranked.len());
    for (i, &c) in ranked.iter().enumerate() {
        if c > 0 {
            log_rank.push(((i + 1) as f64).ln());
            log_count.push((c as f64).ln());
        }
    }
    let fit = ols(&log_rank, &log_count)?;
    Some(PowerLawFit {
        exponent: -fit.slope,
        quality: fit.r_squared,
        n: log_rank.len(),
    })
}

/// Fits a Zipf exponent over the *middle* of the curve, excluding the
/// `head` most popular ranks and the `tail` least popular ones.
///
/// The paper's popularity curves are Zipf only in their trunk — truncated
/// at the head by fetch-at-most-once and at the tail by the clustering
/// effect — so exponents quoted for Fig. 3 correspond to a trunk fit.
pub fn zipf_fit_trunk(ranked: &[u64], head: usize, tail: usize) -> Option<PowerLawFit> {
    if head + tail >= ranked.len() {
        return None;
    }
    let trunk = &ranked[head..ranked.len() - tail];
    let mut log_rank = Vec::with_capacity(trunk.len());
    let mut log_count = Vec::with_capacity(trunk.len());
    for (i, &c) in trunk.iter().enumerate() {
        if c > 0 {
            log_rank.push(((head + i + 1) as f64).ln());
            log_count.push((c as f64).ln());
        }
    }
    let fit = ols(&log_rank, &log_count)?;
    Some(PowerLawFit {
        exponent: -fit.slope,
        quality: fit.r_squared,
        n: log_rank.len(),
    })
}

/// Log-likelihood (up to a constant) of descending counts under a finite
/// Zipf law with exponent `s`: `Σ_k c_k · ln pmf(k)`.
fn zipf_log_likelihood(ranked: &[u64], s: f64) -> f64 {
    let n = ranked.len();
    let h = generalized_harmonic(n, s);
    let total: u64 = ranked.iter().sum();
    let mut ll = -(total as f64) * h.ln();
    for (i, &c) in ranked.iter().enumerate() {
        if c > 0 {
            ll -= s * c as f64 * ((i + 1) as f64).ln();
        }
    }
    ll
}

/// Maximum-likelihood Zipf exponent for descending counts over finite
/// support, via golden-section search on `s ∈ [0.01, 6]`.
///
/// Returns `None` for fewer than two ranks or zero total count.
pub fn zipf_fit_mle(ranked: &[u64]) -> Option<PowerLawFit> {
    let total: u64 = ranked.iter().sum();
    if ranked.len() < 2 || total == 0 {
        return None;
    }
    let (mut lo, mut hi) = (0.01f64, 6.0f64);
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = hi - PHI * (hi - lo);
    let mut x2 = lo + PHI * (hi - lo);
    let mut f1 = zipf_log_likelihood(ranked, x1);
    let mut f2 = zipf_log_likelihood(ranked, x2);
    for _ in 0..64 {
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + PHI * (hi - lo);
            f2 = zipf_log_likelihood(ranked, x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - PHI * (hi - lo);
            f1 = zipf_log_likelihood(ranked, x1);
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    let s = (lo + hi) / 2.0;
    Some(PowerLawFit {
        exponent: s,
        quality: zipf_log_likelihood(ranked, s) / total as f64,
        n: ranked.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn harmonic_known_values() {
        assert_eq!(generalized_harmonic(0, 1.0), 0.0);
        assert!((generalized_harmonic(1, 2.5) - 1.0).abs() < 1e-12);
        // H(3, 1) = 1 + 1/2 + 1/3
        assert!((generalized_harmonic(3, 1.0) - 11.0 / 6.0).abs() < 1e-12);
        // s = 0 degenerates to n
        assert!((generalized_harmonic(5, 0.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let n = 100;
        let total: f64 = (1..=n).map(|k| zipf_pmf(k, n, 1.3)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing() {
        for k in 1..50 {
            assert!(zipf_pmf(k, 50, 0.8) > zipf_pmf(k + 1, 50, 0.8));
        }
    }

    #[test]
    fn loglog_recovers_exact_exponent() {
        // Counts proportional to rank^(-1.5): the fit must return 1.5.
        let ranked: Vec<u64> = (1..=1000u64)
            .map(|k| (1e9 * (k as f64).powf(-1.5)) as u64)
            .collect();
        let fit = zipf_fit_loglog(&ranked).unwrap();
        assert!(
            (fit.exponent - 1.5).abs() < 0.01,
            "exponent {}",
            fit.exponent
        );
        assert!(fit.quality > 0.999);
    }

    #[test]
    fn trunk_fit_ignores_truncated_ends() {
        // Zipf(1.2) trunk with a flattened head and a collapsed tail.
        let mut ranked: Vec<u64> = (1..=1000u64)
            .map(|k| (1e9 * (k as f64).powf(-1.2)) as u64)
            .collect();
        for c in ranked.iter_mut().take(20) {
            *c = 1_100_000_000; // fetch-at-most-once ceiling
        }
        let n = ranked.len();
        for c in ranked.iter_mut().skip(n - 100) {
            *c /= 50; // clustering-effect tail collapse
        }
        let full = zipf_fit_loglog(&ranked).unwrap();
        let trunk = zipf_fit_trunk(&ranked, 20, 100).unwrap();
        assert!(
            (trunk.exponent - 1.2).abs() < 0.02,
            "trunk {}",
            trunk.exponent
        );
        assert!((full.exponent - 1.2).abs() > (trunk.exponent - 1.2).abs());
    }

    #[test]
    fn trunk_fit_degenerate_window() {
        assert!(zipf_fit_trunk(&[5, 4, 3], 2, 1).is_none());
    }

    #[test]
    fn mle_recovers_exponent_from_samples() {
        // Expected counts of a Zipf(1.4) law over 200 ranks, 1e7 draws.
        let n = 200;
        let s = 1.4;
        let draws = 1e7;
        let ranked: Vec<u64> = (1..=n)
            .map(|k| (draws * zipf_pmf(k, n, s)) as u64)
            .collect();
        let fit = zipf_fit_mle(&ranked).unwrap();
        assert!((fit.exponent - s).abs() < 0.01, "mle {}", fit.exponent);
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert!(zipf_fit_loglog(&[]).is_none());
        assert!(zipf_fit_loglog(&[5]).is_none());
        assert!(zipf_fit_loglog(&[0, 0, 0]).is_none());
        assert!(zipf_fit_mle(&[0, 0]).is_none());
        assert!(zipf_fit_mle(&[7]).is_none());
    }

    proptest! {
        #[test]
        fn mle_exponent_in_search_domain(counts in proptest::collection::vec(0u64..10_000, 2..100)) {
            if let Some(fit) = zipf_fit_mle(&counts) {
                prop_assert!((0.01..=6.0).contains(&fit.exponent));
            }
        }

        #[test]
        fn pmf_normalized(n in 1usize..300, s in 0.0f64..4.0) {
            let total: f64 = (1..=n).map(|k| zipf_pmf(k, n, s)).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }
}

//! Correlation coefficients.
//!
//! The pricing study quotes Pearson coefficients throughout (Figs. 12, 14,
//! 15: price vs downloads −0.229, price vs app count −0.240, income vs app
//! count 0.008, …). Spearman is provided as a robustness companion.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if the samples are shorter than 2, have different
/// lengths, or either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ranks a sample with average ranks for ties (1-based).
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Spearman rank correlation (Pearson on average ranks).
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&average_ranks(xs), &average_ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pearson_value() {
        // Hand-computed: r of (1,2,3) vs (1,2,4) = 0.9819805060619659.
        let r = pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0, 4.0]).unwrap();
        assert!((r - 0.981_980_506_061_965_9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(spearman(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn spearman_is_monotone_invariant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        // y = exp(x) is monotone but nonlinear: Spearman 1, Pearson < 1.
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn tied_ranks_average() {
        assert_eq!(
            average_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    proptest! {
        #[test]
        fn pearson_bounded(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&xs, &ys) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn pearson_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let a = pearson(&xs, &ys);
            let b = pearson(&ys, &xs);
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "asymmetric None"),
            }
        }
    }
}

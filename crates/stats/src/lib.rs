//! Statistics substrate for the planet-apps study.
//!
//! The paper leans on a toolbox of empirical statistics — CDFs, Pareto
//! shares, power-law fits, correlation coefficients, a mean-relative-error
//! model distance — none of which exist in the approved dependency set, so
//! this crate implements them from scratch:
//!
//! * [`ecdf`] — empirical CDF / CCDF, quantiles, medians;
//! * [`summary`] — moments, confidence intervals;
//! * [`corr`] — Pearson and Spearman correlation;
//! * [`regression`] — ordinary least squares;
//! * [`powerlaw`] — Zipf/power-law fitting on rank data (log-log least
//!   squares and discrete maximum likelihood), generalized harmonic
//!   numbers;
//! * [`histogram`] — linear and logarithmic binning;
//! * [`pareto`] — top-share curves, Lorenz curve, Gini coefficient;
//! * [`distance`] — model-vs-data distances, including the paper's
//!   Eq. 6 mean relative error;
//! * [`bootstrap`] — nonparametric bootstrap confidence intervals;
//! * [`chisq`] — Pearson chi-squared goodness-of-fit with p-values;
//! * [`sketch`] — mergeable streaming sketches (KLL-style quantiles,
//!   SpaceSaving top-k) with rigorous error-bound accessors, for the
//!   out-of-core analysis path.
//!
//! Numerical conventions: all routines take `&[f64]` or integer-count
//! slices, never consume their input, and document their behaviour on
//! empty input (most return `None` rather than NaN).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod chisq;
pub mod corr;
pub mod distance;
pub mod ecdf;
pub mod histogram;
pub mod kstest;
pub mod multifit;
pub mod pareto;
pub mod powerlaw;
pub mod regression;
pub mod sketch;
pub mod summary;

pub use bootstrap::{bootstrap_ci, BootstrapInterval};
pub use chisq::{chi_squared_gof, chi_squared_survival, ChiSquared};
pub use corr::{pearson, spearman};
pub use distance::{ks_distance_ranked, log_rmse, mean_relative_error};
pub use ecdf::Ecdf;
pub use histogram::{Histogram, HistogramBin};
pub use kstest::{ks_two_sample, KsTest};
pub use multifit::{ols2, powerlaw_cutoff_fit, CutoffFit, Ols2Fit};
pub use pareto::{gini, lorenz_curve, top_share, top_share_curve};
pub use powerlaw::{
    generalized_harmonic, zipf_fit_loglog, zipf_fit_mle, zipf_fit_trunk, zipf_pmf, PowerLawFit,
};
pub use regression::{ols, OlsFit};
pub use sketch::{QuantileSketch, SpaceSaving};
pub use summary::{mean, mean_ci95, stddev, variance, Summary};

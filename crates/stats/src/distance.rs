//! Model-vs-data distances.
//!
//! The paper scores a simulated popularity curve against the measured one
//! with the mean relative error of per-rank downloads (Eq. 6). Two
//! companions are provided: an RMSE in log space (less dominated by the
//! tail's small denominators) and a Kolmogorov–Smirnov distance between
//! the implied rank distributions.

/// Mean relative error between observed and simulated per-rank counts
/// (the paper's Eq. 6): `(1/A) Σ |Do(i) − Ds(i)| / Do(i)`.
///
/// Both slices must be ranked the same way (descending downloads).
/// Ranks where the observed count is zero are skipped (the paper's data
/// has none; ours can, in tiny synthetic stores).
///
/// Returns `None` if lengths differ or no rank has a positive observed
/// count.
pub fn mean_relative_error(observed: &[u64], simulated: &[u64]) -> Option<f64> {
    if observed.len() != simulated.len() || observed.is_empty() {
        return None;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (&o, &s) in observed.iter().zip(simulated) {
        if o > 0 {
            total += (o as f64 - s as f64).abs() / o as f64;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

/// Root-mean-square error between `ln(1 + observed)` and
/// `ln(1 + simulated)` per rank.
///
/// Returns `None` if lengths differ or input is empty.
pub fn log_rmse(observed: &[u64], simulated: &[u64]) -> Option<f64> {
    if observed.len() != simulated.len() || observed.is_empty() {
        return None;
    }
    let ss: f64 = observed
        .iter()
        .zip(simulated)
        .map(|(&o, &s)| {
            let d = (1.0 + o as f64).ln() - (1.0 + s as f64).ln();
            d * d
        })
        .sum();
    Some((ss / observed.len() as f64).sqrt())
}

/// Kolmogorov–Smirnov distance between the two normalized cumulative
/// rank-mass curves: `max_k |ΣO(1..k)/ΣO − ΣS(1..k)/ΣS|`.
///
/// Returns `None` if lengths differ, input is empty, or either total is 0.
pub fn ks_distance_ranked(observed: &[u64], simulated: &[u64]) -> Option<f64> {
    if observed.len() != simulated.len() || observed.is_empty() {
        return None;
    }
    let to: u64 = observed.iter().sum();
    let ts: u64 = simulated.iter().sum();
    if to == 0 || ts == 0 {
        return None;
    }
    let mut co = 0u64;
    let mut cs = 0u64;
    let mut worst = 0.0f64;
    for (&o, &s) in observed.iter().zip(simulated) {
        co += o;
        cs += s;
        let d = (co as f64 / to as f64 - cs as f64 / ts as f64).abs();
        worst = worst.max(d);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_curves_have_zero_distance() {
        let xs = [100, 50, 25, 12];
        assert_eq!(mean_relative_error(&xs, &xs), Some(0.0));
        assert_eq!(log_rmse(&xs, &xs), Some(0.0));
        assert_eq!(ks_distance_ranked(&xs, &xs), Some(0.0));
    }

    #[test]
    fn mre_known_value() {
        // |10-5|/10 = 0.5, |20-30|/20 = 0.5 -> mean 0.5
        assert_eq!(mean_relative_error(&[10, 20], &[5, 30]), Some(0.5));
    }

    #[test]
    fn mre_skips_zero_observed() {
        // Only the first rank counts: |10-5|/10 = 0.5.
        assert_eq!(mean_relative_error(&[10, 0], &[5, 99]), Some(0.5));
        assert_eq!(mean_relative_error(&[0, 0], &[5, 99]), None);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert_eq!(mean_relative_error(&[1, 2], &[1]), None);
        assert_eq!(log_rmse(&[1], &[1, 2]), None);
        assert_eq!(ks_distance_ranked(&[], &[]), None);
    }

    #[test]
    fn ks_known_value() {
        // observed mass (0.5, 0.5); simulated mass (1.0, 0.0): max gap 0.5.
        assert_eq!(ks_distance_ranked(&[1, 1], &[2, 0]), Some(0.5));
    }

    #[test]
    fn worse_fit_scores_higher() {
        let observed = [1000, 500, 250, 125, 62];
        let close = [990, 480, 260, 120, 70];
        let far = [500, 500, 500, 500, 500];
        assert!(
            mean_relative_error(&observed, &close).unwrap()
                < mean_relative_error(&observed, &far).unwrap()
        );
        assert!(log_rmse(&observed, &close).unwrap() < log_rmse(&observed, &far).unwrap());
    }

    proptest! {
        #[test]
        fn ks_bounded(pairs in proptest::collection::vec((1u64..1000, 1u64..1000), 1..100)) {
            let o: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let s: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let d = ks_distance_ranked(&o, &s).unwrap();
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn mre_nonnegative(pairs in proptest::collection::vec((1u64..1000, 0u64..1000), 1..100)) {
            let o: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let s: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            prop_assert!(mean_relative_error(&o, &s).unwrap() >= 0.0);
        }
    }
}

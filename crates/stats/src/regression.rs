//! Ordinary least squares on a single predictor.
//!
//! Used directly for the log-log power-law fits (Fig. 3, 11) and for the
//! `income ~ app count` line fit the paper draws in Figure 14.

use serde::{Deserialize, Serialize};

/// The result of a simple OLS fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl OlsFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y ≈ a + b·x` by least squares.
///
/// Returns `None` if the samples differ in length, have fewer than two
/// points, or `x` has zero variance.
pub fn ols(xs: &[f64], ys: &[f64]) -> Option<OlsFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant and perfectly predicted by the horizontal line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(OlsFit {
        slope,
        intercept,
        r_squared,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 2.0 * x).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) + 17.0).abs() < 1e-12);
    }

    #[test]
    fn known_noisy_fit() {
        // Classic hand-checkable set: slope 0.9, intercept ~0.633…
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 2.0, 4.0, 4.0, 5.0];
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 0.8).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ols(&[1.0], &[1.0]).is_none());
        assert!(ols(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(ols(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    proptest! {
        #[test]
        fn residuals_sum_to_zero(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..80)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(fit) = ols(&xs, &ys) {
                let resid_sum: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - fit.predict(x)).sum();
                prop_assert!(resid_sum.abs() < 1e-6 * (1.0 + ys.iter().map(|y| y.abs()).sum::<f64>()));
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&fit.r_squared));
            }
        }
    }
}

//! Property tests for the mergeable sketches: the advertised error
//! bounds must hold on random *and* adversarial inputs, and merging must
//! commute/associate up to those bounds — the contract the out-of-core
//! shard folds rely on.

use appstore_stats::{QuantileSketch, SpaceSaving};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Exact empirical quantile with the same convention the sketch uses
/// (rank = ceil(q·n), 1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// Absolute rank error of reporting `approx` for quantile `q` of
/// `sorted`: distance from the target rank to the value's rank window.
fn rank_error(sorted: &[u64], q: f64, approx: u64) -> u64 {
    let lo = sorted.partition_point(|&v| v < approx) as u64;
    let hi = sorted.partition_point(|&v| v <= approx) as u64;
    let target = ((q * sorted.len() as f64).ceil() as u64).clamp(1, sorted.len() as u64);
    if target < lo {
        lo - target
    } else if target > hi {
        target - hi
    } else {
        0
    }
}

fn assert_within_bound(sketch: &QuantileSketch, mut values: Vec<u64>, label: &str) {
    values.sort_unstable();
    let bound = sketch.rank_error_bound();
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let approx = sketch.quantile(q).expect("nonempty");
        let err = rank_error(&values, q, approx);
        assert!(
            err <= bound,
            "{label}: q={q} rank error {err} > advertised bound {bound}"
        );
    }
}

/// Deterministic Zipf-skewed value: heavy mass on small values.
fn zipf_value(i: u64) -> u64 {
    let u = ((i.wrapping_mul(2_654_435_761)) % 10_000) as f64 / 10_000.0;
    // Inverse-CDF of a rough power law on [1, 10_000].
    (10_000f64.powf(u).max(1.0)) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quantiles_within_bound_on_random_input(
        values in proptest::collection::vec(0u64..1_000_000, 1..4000),
        k in 8usize..128,
    ) {
        let mut sketch = QuantileSketch::new(k);
        for &v in &values {
            sketch.offer(v);
        }
        prop_assert_eq!(sketch.count(), values.len() as u64);
        assert_within_bound(&sketch, values, "random");
    }

    #[test]
    fn quantiles_within_bound_on_adversarial_shapes(
        n in 100usize..3000,
        k in 8usize..64,
        shape in 0usize..3,
    ) {
        let values: Vec<u64> = match shape {
            0 => (0..n as u64).map(zipf_value).collect(),      // Zipf-skewed
            1 => vec![42; n],                                  // all-equal
            _ => (0..n as u64).collect(),                      // sorted ramp
        };
        let mut sketch = QuantileSketch::new(k);
        for &v in &values {
            sketch.offer(v);
        }
        let label = ["zipf", "all-equal", "sorted"][shape];
        assert_within_bound(&sketch, values, label);
    }

    #[test]
    fn merge_is_commutative_and_associative_within_bounds(
        a in proptest::collection::vec(0u64..100_000, 1..1200),
        b in proptest::collection::vec(0u64..100_000, 1..1200),
        c in proptest::collection::vec(0u64..100_000, 1..1200),
        k in 16usize..64,
    ) {
        let build = |chunks: &[&Vec<u64>]| {
            let mut sketch = QuantileSketch::new(k);
            for chunk in chunks {
                let mut part = QuantileSketch::new(k);
                for &v in chunk.iter() {
                    part.offer(v);
                }
                sketch.merge(&part);
            }
            sketch
        };
        let abc = build(&[&a, &b, &c]);
        let cba = build(&[&c, &b, &a]);
        // (a⊕b)⊕c vs a⊕(b⊕c): fold the right pair first.
        let mut bc = QuantileSketch::new(k);
        for &v in b.iter().chain(c.iter()) {
            bc.offer(v);
        }
        let mut a_bc = build(&[&a]);
        a_bc.merge(&bc);

        let mut all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(abc.count(), all.len() as u64);
        prop_assert_eq!(cba.count(), all.len() as u64);
        prop_assert_eq!(a_bc.count(), all.len() as u64);
        // Every merge order answers within its own advertised bound of
        // the exact quantile — the fold contract the shards rely on.
        for sketch in [&abc, &cba, &a_bc] {
            assert_within_bound(sketch, all.clone(), "merge-order");
        }
    }

    #[test]
    fn exactness_below_capacity(
        values in proptest::collection::vec(0u64..1000, 1..64),
    ) {
        // A sketch that never compacts advertises bound 0 and must be
        // exactly the empirical quantile function.
        let mut sketch = QuantileSketch::new(64);
        for &v in &values {
            sketch.offer(v);
        }
        prop_assert_eq!(sketch.rank_error_bound(), 0);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.3, 0.5, 0.8, 1.0] {
            prop_assert_eq!(sketch.quantile(q), Some(exact_quantile(&sorted, q)));
        }
    }

    #[test]
    fn space_saving_brackets_truth_and_contains_heavy_hitters(
        keys in proptest::collection::vec(0u64..50, 1..2000),
        capacity in 4usize..24,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for &key in &keys {
            ss.offer(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        prop_assert_eq!(ss.total(), keys.len() as u64);
        let top = ss.top(capacity);
        for &(key, est, over) in &top {
            let true_count = truth.get(&key).copied().unwrap_or(0);
            prop_assert!(est >= true_count, "estimate undercounts key {key}");
            prop_assert!(est - over <= true_count, "floor overcounts key {key}");
        }
        // Guaranteed containment: true count above min_count ⇒ tracked.
        let floor = ss.min_count();
        for (&key, &count) in &truth {
            if count > floor {
                prop_assert!(
                    top.iter().any(|&(k, _, _)| k == key),
                    "key {key} with true count {count} > floor {floor} missing"
                );
            }
        }
    }

    #[test]
    fn space_saving_merge_preserves_guarantees(
        left_keys in proptest::collection::vec(0u64..40, 1..1000),
        right_keys in proptest::collection::vec(0u64..40, 1..1000),
        capacity in 4usize..16,
    ) {
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        let mut left = SpaceSaving::new(capacity);
        for &key in &left_keys {
            left.offer(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        let mut right = SpaceSaving::new(capacity);
        for &key in &right_keys {
            right.offer(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        let mut forward = left.clone();
        forward.merge(&right);
        let mut backward = right.clone();
        backward.merge(&left);
        for merged in [&forward, &backward] {
            prop_assert_eq!(merged.total(), (left_keys.len() + right_keys.len()) as u64);
            let top = merged.top(capacity);
            for &(key, est, over) in &top {
                let true_count = truth.get(&key).copied().unwrap_or(0);
                prop_assert!(est >= true_count);
                prop_assert!(est - over <= true_count);
            }
            let floor = merged.min_count();
            for (&key, &count) in &truth {
                if count > floor {
                    prop_assert!(top.iter().any(|&(k, _, _)| k == key));
                }
            }
        }
    }
}

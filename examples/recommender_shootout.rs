//! Recommender shootout on clustering-driven behaviour.
//!
//! ```sh
//! cargo run --release --example recommender_shootout
//! ```
//!
//! The paper's §7 argues that recommendation systems should exploit the
//! clustering effect: "the recommendation system can suggest apps related
//! to the most recent interests of a user, instead of apps related to
//! older downloads." This example stages that argument as an experiment —
//! train three recommenders on the first half of a behavioural store's
//! download history and score them on what users actually fetched later.

use planet_apps::core::{AppId, Day, Seed, StoreId};
use planet_apps::recommend::{evaluate, temporal_split, CategoryRecency, ItemKnn, Popularity};
use planet_apps::synth::{generate, StoreProfile};

fn main() {
    let profile = StoreProfile::anzhi().scaled_down(6);
    println!(
        "generating `{}`: {} apps, {} users, {} days of downloads…",
        profile.name,
        profile.final_apps(),
        profile.users,
        profile.days
    );
    let store = generate(&profile, StoreId(0), Seed::new(2024));
    let dataset = &store.dataset;
    let events = &store.outcome.events;

    // Train on the first half of the campaign, evaluate on the second.
    let split = Day(profile.days / 2);
    let (train, test) = temporal_split(events, split);
    println!(
        "temporal split at {}: {} training downloads, {} future downloads\n",
        split,
        train.len(),
        test.len()
    );

    let k = 20;
    let mut rows = Vec::new();
    {
        let mut r = Popularity::new();
        rows.push(evaluate(&mut r, &train, &test, k).expect("test users exist"));
    }
    {
        let mut r = ItemKnn::new(30);
        rows.push(evaluate(&mut r, &train, &test, k).expect("test users exist"));
    }
    {
        let mut r = CategoryRecency::new(|a: AppId| dataset.category_of(a), 5);
        rows.push(evaluate(&mut r, &train, &test, k).expect("test users exist"));
    }

    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "recommender", "users", "hit-rate@20", "recall@20"
    );
    for row in &rows {
        println!(
            "{:<18} {:>10} {:>11.1}% {:>9.1}%",
            row.name,
            row.users,
            row.hit_rate * 100.0,
            row.recall * 100.0
        );
    }

    let popularity = rows.iter().find(|r| r.name == "popularity").expect("row");
    let category = rows
        .iter()
        .find(|r| r.name == "category-recency")
        .expect("row");
    println!(
        "\ncategory-recency lifts hit-rate by {:+.1} points over the popularity\n\
         baseline — recency-of-interest carries real signal, as §7 predicted.",
        (category.hit_rate - popularity.hit_rate) * 100.0
    );
}

//! Designing an app-delivery cache under clustering-driven demand.
//!
//! ```sh
//! cargo run --release --example cache_policy_design
//! ```
//!
//! The paper's §7 shows LRU loses a lot of hit ratio when users follow
//! the clustering effect, and suggests replacement policies that account
//! for it. This example plays appstore operator: it simulates the three
//! workload models against five policies across cache sizes and prints
//! the resulting hit-ratio matrix, ending with a concrete recommendation.

use planet_apps::cache::{sweep_cache_sizes, Fig19Point};
use planet_apps::core::Seed;
use planet_apps::models::{ClusterLayout, ClusteringParams, ModelKind, PopulationParams};

fn main() {
    // A store in the shape of the paper's Fig. 19 setup (scaled): 3,000
    // apps in 30 categories, 30,000 users, ~100k downloads.
    let params = ClusteringParams {
        population: PopulationParams {
            apps: 3_000,
            users: 30_000,
            downloads_per_user: 3,
            zipf_exponent: 1.7,
        },
        clusters: 30,
        p: 0.9,
        cluster_exponent: 1.4,
        layout: ClusterLayout::Interleaved,
    };
    let fractions = [0.01, 0.05, 0.10];
    println!(
        "simulating {} downloads per model…\n",
        params.population.total_downloads()
    );
    let points = sweep_cache_sizes(params, &fractions, Seed::new(99), true, 0);

    for kind in ModelKind::ALL {
        println!("workload: {}", kind.name());
        let model_points: Vec<&Fig19Point> = points.iter().filter(|p| p.model == kind).collect();
        let policies: Vec<&str> = model_points[0]
            .hit_ratios
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        print!("{:>14}", "cache size");
        for p in &policies {
            print!(" {:>13}", p);
        }
        println!();
        for point in &model_points {
            print!("{:>13.0}%", point.cache_fraction * 100.0);
            for (_, ratio) in &point.hit_ratios {
                print!(" {:>12.1}%", ratio * 100.0);
            }
            println!();
        }
        println!();
    }

    // Recommendation: compare LRU vs Category-LRU on the clustering
    // workload at the smallest (most constrained) cache size.
    let constrained = points
        .iter()
        .find(|p| p.model == ModelKind::AppClustering && p.cache_fraction == fractions[0])
        .expect("point exists");
    let get = |name: &str| {
        constrained
            .hit_ratios
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .expect("policy measured")
    };
    let lru = get("LRU");
    let category = get("Category-LRU");
    println!("-- recommendation --");
    println!(
        "at a {:.0}% cache under clustering demand: LRU {:.1}%, Category-LRU {:.1}%",
        fractions[0] * 100.0,
        lru * 100.0,
        category * 100.0
    );
    if category > lru {
        println!(
            "category-aware replacement recovers {:.1} points of hit ratio — \
             the policy direction the paper's §7 calls for",
            (category - lru) * 100.0
        );
    } else {
        println!("plain LRU remains competitive at this size; grow the window");
    }
}

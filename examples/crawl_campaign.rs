//! Running a crawl campaign against a hostile store.
//!
//! ```sh
//! cargo run --release --example crawl_campaign
//! ```
//!
//! Reproduces the paper's §2.2 operational setup end to end: a
//! China-geofenced marketplace with per-address token-bucket rate limits
//! and permanent blacklisting, crawled daily through a PlanetLab-style
//! proxy pool under injected transport faults — then verifies the
//! harvested dataset equals the ground truth and prints the crawl
//! report.

use planet_apps::core::{Seed, StoreId};
use planet_apps::crawler::{
    run_campaign, FaultPlan, MarketplaceServer, ProxyPool, Region, ServerPolicy,
};
use planet_apps::synth::{generate, StoreProfile};

fn main() {
    // Ground truth: a small Anzhi-like store with comments.
    let mut profile = StoreProfile::anzhi().scaled_down(16);
    profile.commenter_fraction = 0.5;
    profile.comment_rate = 0.2;
    let truth = generate(&profile, StoreId(0), Seed::new(21)).dataset;
    println!(
        "ground truth: {} apps, {} snapshots, {} comments\n",
        truth.last().app_count(),
        truth.snapshots.len(),
        truth.comments.len()
    );

    // The store is hostile: China-only full rate, modest per-address
    // budget, permanent bans for abuse.
    let server = MarketplaceServer::new(
        &truth,
        ServerPolicy {
            requests_per_second: 100.0,
            burst: 200,
            china_only: true,
            foreign_rate_factor: 0.05,
            violation_budget: 300,
            latency_ms: 80,
        },
    );

    // The paper's countermeasure: ~100 PlanetLab proxies, Chinese nodes
    // only for the Chinese stores.
    let mut pool = ProxyPool::planetlab(40, 60);

    // The network is imperfect: 8% of responses vanish, 8% arrive
    // corrupted (cf. smoltcp's fault-injection harness).
    let faults = FaultPlan {
        drop_chance: 0.08,
        corrupt_chance: 0.08,
    };

    let outcome = run_campaign(
        &server,
        &truth,
        &mut pool,
        Some(Region::China),
        faults,
        Seed::new(22),
    )
    .expect("campaign should complete");

    let report = outcome.report;
    println!("-- crawl report --");
    println!("days crawled:          {}", report.days);
    println!("app pages fetched:     {}", report.app_pages);
    println!("comment pages fetched: {}", report.comment_pages);
    println!("requests (w/ retries): {}", report.requests);
    println!("retries:               {}", report.retries);
    println!("dropped responses:     {}", report.dropped);
    println!("corrupted payloads:    {}", report.corrupted);
    println!("rate-limit refusals:   {}", report.rate_limited);
    println!("proxies banned:        {}", report.proxies_banned);
    println!(
        "virtual campaign time: {:.1} hours",
        report.virtual_ms as f64 / 3_600_000.0
    );

    // The whole point: a faithful dataset despite the hostile transport.
    assert_eq!(
        outcome.dataset.snapshots, truth.snapshots,
        "harvest must be lossless"
    );
    assert_eq!(outcome.dataset.comments.len(), truth.comments.len());
    outcome
        .dataset
        .validate()
        .expect("harvested dataset is valid");
    println!("\nharvest verified lossless against ground truth ✔");
}

//! Pricing advisor: paid app, or free with ads?
//!
//! ```sh
//! cargo run --release --example pricing_advisor
//! ```
//!
//! Plays the role of a developer deciding a revenue strategy on a
//! SlideMe-like marketplace (paper §6): it inspects the store's paid
//! popularity curve, developer income distribution, and per-category
//! break-even ad income, then prints a per-category recommendation.

use planet_apps::core::{Seed, StoreId};
use planet_apps::revenue::{
    ad_fraction_of_free_apps, breakeven_by_category, breakeven_by_tier, breakeven_overall,
    category_shares, developer_incomes,
};
use planet_apps::stats::Ecdf;
use planet_apps::synth::{generate, StoreProfile};

fn main() {
    let profile = StoreProfile::slideme();
    println!(
        "generating `{}`: {} free apps + {} paid apps over {} days…\n",
        profile.name,
        profile.final_apps(),
        profile.paid.as_ref().map(|p| p.initial_apps).unwrap_or(0),
        profile.days
    );
    let store = generate(&profile, StoreId(3), Seed::new(11));
    let dataset = &store.dataset;

    // -- what does paid income look like? ---------------------------------
    let incomes = developer_incomes(dataset);
    let dollars: Vec<f64> = incomes.iter().map(|i| i.income.as_dollars()).collect();
    let ecdf = Ecdf::new(&dollars);
    println!("-- paid-app income reality check (Fig. 13) --");
    println!("paid-app developers: {}", incomes.len());
    println!(
        "half earn below ${:.2}; 80th percentile ${:.2}; best ${:.0}",
        ecdf.median().unwrap_or(0.0),
        ecdf.quantile(0.8).unwrap_or(0.0),
        ecdf.max().unwrap_or(0.0)
    );

    // -- where does paid revenue concentrate? -----------------------------
    let shares = category_shares(dataset);
    println!("\n-- paid revenue by category (Fig. 15) --");
    for s in shares.iter().take(4) {
        println!(
            "{:<14} {:>5.1}% of revenue from {:>4.1}% of paid apps",
            s.name,
            s.revenue_share * 100.0,
            s.app_share * 100.0
        );
    }

    // -- the free-with-ads alternative -------------------------------------
    let ad_share = ad_fraction_of_free_apps(&dataset.apps).unwrap_or(0.0);
    let overall = breakeven_overall(dataset).unwrap_or(f64::NAN);
    println!("\n-- free with ads (Eq. 7 / Figs. 17-18) --");
    println!(
        "{:.0}% of free apps already monetize with ads; break-even ad income \
         for an average free app: ${overall:.3}/download",
        ad_share * 100.0
    );
    if let Some((top, mid, low)) = breakeven_by_tier(dataset) {
        println!("by expected popularity: hit app ${top:.3}, average ${mid:.3}, niche ${low:.3}");
    }

    // -- per-category recommendation ---------------------------------------
    // Typical effective ad revenue per download in 2012 was on the order
    // of a few cents; below this threshold ads beat the average paid app
    // of the category.
    const TYPICAL_AD_INCOME_PER_DOWNLOAD: f64 = 0.05;
    println!(
        "\n-- recommendation per category (ads pay ~${TYPICAL_AD_INCOME_PER_DOWNLOAD:.2}/download) --"
    );
    for (name, breakeven) in breakeven_by_category(dataset) {
        let advice = if breakeven < TYPICAL_AD_INCOME_PER_DOWNLOAD {
            "go FREE with ads"
        } else {
            "charge up front"
        };
        println!("{name:<16} break-even ${breakeven:>7.4}/dl -> {advice}");
    }
    println!(
        "\nas in the paper: ad-funded free apps win in most categories, while \
         categories with strong paid heads (music) still reward charging."
    );
}

//! Quickstart: generate a marketplace, reproduce the headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the library end to end in one screen of code: generate a
//! calibrated Anzhi-like store, characterize its popularity curve
//! (Pareto share + truncated-Zipf trunk), measure the clustering effect
//! on the comment streams, and fit the three workload models to show
//! APP-CLUSTERING explains the curve best.

use planet_apps::affinity::{affinity_samples, build_user_streams, random_walk_affinity};
use planet_apps::core::{Seed, StoreId};
use planet_apps::models::{fit_clustering, fit_zipf, fit_zipf_amo, FitSpec};
use planet_apps::stats::{top_share, zipf_fit_trunk};
use planet_apps::synth::{generate, StoreProfile};

fn main() {
    let seed = Seed::new(7);

    // 1. Generate a store whose users behave like the paper's (category
    //    affinity + fetch-at-most-once), scaled for a fast run.
    let profile = StoreProfile::anzhi().scaled_down(3);
    println!(
        "generating `{}`: {} initial apps, {} users, {} campaign days…",
        profile.name, profile.initial_apps, profile.users, profile.days
    );
    let store = generate(&profile, StoreId(0), seed);
    let dataset = &store.dataset;

    // 2. Popularity characterization (paper Figs. 2–3).
    let ranked = dataset.final_downloads_ranked();
    let pareto = top_share(&ranked, 0.10).expect("nonempty curve");
    let trunk = zipf_fit_trunk(&ranked, ranked.len() / 50, ranked.len() / 4)
        .expect("enough ranks for a trunk fit");
    println!("\n-- popularity --");
    println!(
        "top 10% of apps hold {:.1}% of downloads (paper: 70-90%)",
        pareto * 100.0
    );
    println!(
        "Zipf trunk exponent {:.2} (r² {:.3}) with truncated head and tail",
        trunk.exponent, trunk.quality
    );

    // 3. The clustering effect (paper Figs. 6–7).
    let streams = build_user_streams(&dataset.comments, |a| dataset.category_of(a));
    let samples = affinity_samples(&streams, 1);
    let mean_affinity = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let baseline =
        random_walk_affinity(&dataset.apps_by_category(dataset.last()), 1).expect("apps exist");
    println!("\n-- clustering effect --");
    println!(
        "temporal affinity {:.2} vs {:.2} for a random walk ({:.1}x)",
        mean_affinity,
        baseline,
        mean_affinity / baseline
    );

    // 4. Model comparison (paper Figs. 8–9).
    let mut spec = FitSpec::standard(profile.categories);
    spec.refine_top = 4;
    spec.replications = 1;
    let zipf = fit_zipf(&ranked, &spec).expect("fit");
    let amo = fit_zipf_amo(&ranked, &spec, seed.child("amo")).expect("fit");
    let clustering = fit_clustering(&ranked, &spec, seed.child("clustering")).expect("fit");
    println!("\n-- workload models (Eq. 6 distance, lower is better) --");
    println!(
        "ZIPF               z={:.1}                  distance {:.3}",
        zipf.zipf_exponent, zipf.distance
    );
    println!(
        "ZIPF-at-most-once  z={:.1}                  distance {:.3}",
        amo.zipf_exponent, amo.distance
    );
    println!(
        "APP-CLUSTERING     z_r={:.1} z_c={:.1} p={:.2}  distance {:.3}",
        clustering.zipf_exponent, clustering.cluster_exponent, clustering.p, clustering.distance
    );
    assert!(
        clustering.distance < zipf.distance && clustering.distance < amo.distance,
        "the paper's model should explain its own behavioural data best"
    );
    println!("\nAPP-CLUSTERING fits closest — the paper's central claim, reproduced.");
}

//! # planet-apps
//!
//! A from-scratch reproduction of *Rise of the Planet of the Apps: A
//! Systematic Study of the Mobile App Ecosystem* (Petsas et al., IMC
//! 2013) as a Rust workspace. This facade crate re-exports every
//! sub-crate under one roof for convenient use in examples and
//! downstream experiments.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `appstore-core` | domain model: ids, apps, categories, events, snapshots, datasets, deterministic seeding |
//! | [`stats`] | `appstore-stats` | ECDFs, correlation, regression, power-law fits, Pareto/Lorenz/Gini, model distances, bootstrap |
//! | [`models`] | `appstore-models` | ZIPF, ZIPF-at-most-once and APP-CLUSTERING simulators, closed forms, grid-search fitting |
//! | [`affinity`] | `appstore-affinity` | temporal affinity metric, random-walk baselines, per-user behaviour aggregations |
//! | [`synth`] | `appstore-synth` | calibrated synthetic marketplace generator (the data substitution for the 2012 crawls) |
//! | [`crawler`] | `appstore-crawler` | simulated collection architecture: proxy pool, rate limits, blacklisting, fault injection |
//! | [`cache`] | `appstore-cache` | app-delivery cache policies and the Fig. 19 experiments |
//! | [`revenue`] | `appstore-revenue` | pricing, developer income, category shares, break-even ad income |
//! | [`recommend`] | `appstore-recommend` | popularity / item-kNN / category-recency recommenders with temporal hold-out evaluation |
//!
//! ## Quickstart
//!
//! ```
//! use planet_apps::core::{Seed, StoreId};
//! use planet_apps::synth::{generate, StoreProfile};
//! use planet_apps::stats::top_share;
//!
//! // Generate a small calibrated Anzhi-like store…
//! let profile = StoreProfile::anzhi().scaled_down(8);
//! let store = generate(&profile, StoreId(0), Seed::new(7));
//!
//! // …and confirm the paper's Pareto effect on its download curve.
//! let ranked = store.dataset.final_downloads_ranked();
//! let share = top_share(&ranked, 0.10).unwrap();
//! assert!(share > 0.5, "top-10% share {share}");
//! ```

#![forbid(unsafe_code)]

pub use appstore_affinity as affinity;
pub use appstore_cache as cache;
pub use appstore_core as core;
pub use appstore_crawler as crawler;
pub use appstore_models as models;
pub use appstore_recommend as recommend;
pub use appstore_revenue as revenue;
pub use appstore_stats as stats;
pub use appstore_synth as synth;

//! Cross-crate tests of the pricing and revenue claims (Section 6).

use planet_apps::core::{PricingTier, Seed, StoreId};
use planet_apps::revenue::{
    ad_fraction_of_free_apps, breakeven_by_category, breakeven_by_tier, breakeven_overall,
    category_shares, developer_incomes, developer_strategies, price_correlations,
};
use planet_apps::stats::{zipf_fit_loglog, Ecdf};
use planet_apps::synth::{generate, StoreProfile};

fn slideme() -> planet_apps::core::Dataset {
    generate(&StoreProfile::slideme(), StoreId(3), Seed::new(301)).dataset
}

#[test]
fn paid_apps_follow_a_cleaner_power_law_than_free_apps() {
    let d = slideme();
    let last = d.last();
    let mut free = Vec::new();
    let mut paid = Vec::new();
    for obs in &last.observations {
        match d.apps[obs.app.index()].tier {
            PricingTier::Free => free.push(obs.downloads),
            PricingTier::Paid => paid.push(obs.downloads),
        }
    }
    free.sort_unstable_by(|a, b| b.cmp(a));
    paid.sort_unstable_by(|a, b| b.cmp(a));
    let free_fit = zipf_fit_loglog(&free).expect("free fit");
    let paid_fit = zipf_fit_loglog(&paid).expect("paid fit");
    // Paper Fig. 11: the paid curve is a clean power law; the free curve
    // is truncated at both ends, hence a worse straight-line fit.
    assert!(
        paid_fit.quality > free_fit.quality,
        "paid r² {} vs free r² {}",
        paid_fit.quality,
        free_fit.quality
    );
    assert!(paid_fit.quality > 0.9, "paid r² {}", paid_fit.quality);
    // And the paid exponent is steeper (paper: 1.72 vs 0.85 trunk).
    assert!(
        paid_fit.exponent > free_fit.exponent,
        "paid z {} vs free z {}",
        paid_fit.exponent,
        free_fit.exponent
    );
}

#[test]
fn price_correlates_negatively_with_popularity_and_supply() {
    let d = slideme();
    // Per-bin Pearson (what the paper plots) is noisy at our 1/10 scale —
    // a single head app dominates whichever dollar bin it lands in — so
    // the robust check is per-app Spearman, plus the supply correlation.
    let last = d.last();
    let mut prices = Vec::new();
    let mut downloads = Vec::new();
    for obs in &last.observations {
        let app = &d.apps[obs.app.index()];
        if app.tier == PricingTier::Paid {
            prices.push(app.price.as_dollars());
            downloads.push(obs.downloads as f64);
        }
    }
    let rho = planet_apps::stats::spearman(&prices, &downloads).expect("paid apps exist");
    assert!(rho < 0.0, "price/downloads Spearman = {rho}");
    let (_, r_apps) = price_correlations(&d, 50).expect("paid apps exist");
    assert!(r_apps < 0.0, "price/apps r = {r_apps}");
}

#[test]
fn developer_income_is_heavily_skewed_and_uncorrelated_with_app_count() {
    let d = slideme();
    let incomes = developer_incomes(&d);
    assert!(incomes.len() > 50, "developers: {}", incomes.len());
    let dollars: Vec<f64> = incomes.iter().map(|i| i.income.as_dollars()).collect();
    let ecdf = Ecdf::new(&dollars);
    // Paper Fig. 13: the median developer earns next to nothing while
    // the maximum is orders of magnitude higher.
    let median = ecdf.median().expect("nonempty");
    let max = ecdf.max().expect("nonempty");
    assert!(
        max > 100.0 * median.max(1.0),
        "income not skewed: median {median}, max {max}"
    );
    // Paper Fig. 14: Pearson(apps, income) ≈ 0.
    let apps: Vec<f64> = incomes.iter().map(|i| i.paid_apps as f64).collect();
    if let Some(r) = planet_apps::stats::pearson(&apps, &dollars) {
        assert!(r.abs() < 0.4, "income correlates with app count: {r}");
    }
}

#[test]
fn revenue_concentrates_in_music_while_ebooks_earn_nothing() {
    let d = slideme();
    let shares = category_shares(&d);
    assert_eq!(shares[0].name, "music", "top category {}", shares[0].name);
    assert!(
        shares[0].revenue_share > 0.3,
        "music revenue share {}",
        shares[0].revenue_share
    );
    // Music holds few paid apps (paper: 1.6%).
    assert!(
        shares[0].app_share < 0.1,
        "music app share {}",
        shares[0].app_share
    );
    let ebooks = shares
        .iter()
        .find(|s| s.name == "e-books")
        .expect("e-books");
    assert!(
        ebooks.app_share > 0.2,
        "e-books app share {}",
        ebooks.app_share
    );
    assert!(
        ebooks.revenue_share < 0.05,
        "e-books revenue share {}",
        ebooks.revenue_share
    );
    // Top four categories dominate (paper: 95%).
    let top4: f64 = shares.iter().take(4).map(|s| s.revenue_share).sum();
    assert!(top4 > 0.7, "top-4 revenue {top4}");
}

#[test]
fn strategy_mix_and_focus_match_fig16() {
    let d = slideme();
    let mix = developer_strategies(&d);
    let total = (mix.free_only + mix.paid_only + mix.both) as f64;
    assert!(
        mix.free_only as f64 / total > 0.6,
        "free-only share {}",
        mix.free_only as f64 / total
    );
    assert!(mix.both > 0, "no dual-strategy developers");
    // Most developers publish one app in one category.
    let single_cat = mix
        .free_categories_per_developer
        .iter()
        .filter(|&&c| c == 1)
        .count() as f64
        / mix.free_categories_per_developer.len().max(1) as f64;
    assert!(single_cat > 0.5, "single-category share {single_cat}");
}

#[test]
fn break_even_ad_income_is_small_and_category_dependent() {
    let d = slideme();
    // Paper: 67.7% of free apps carry ads.
    let ad_share = ad_fraction_of_free_apps(&d.apps).expect("free apps exist");
    assert!((ad_share - 0.677).abs() < 0.05, "ad share {ad_share}");
    // Eq. 7 overall: cents, not dollars (paper: $0.21).
    let overall = breakeven_overall(&d).expect("both populations");
    assert!(
        (0.005..=2.0).contains(&overall),
        "overall break-even ${overall}"
    );
    // Popular apps need less ad income than unpopular ones (Fig. 17).
    let (top, mid, low) = breakeven_by_tier(&d).expect("tiers");
    assert!(
        top < mid && mid < low,
        "tiers not ordered: {top} {mid} {low}"
    );
    // Per category: music demands the most (Fig. 18).
    let by_cat = breakeven_by_category(&d);
    assert!(
        by_cat.len() >= 5,
        "categories with both populations: {}",
        by_cat.len()
    );
    assert_eq!(
        by_cat[0].0, "music",
        "most demanding category {}",
        by_cat[0].0
    );
    let spread = by_cat[0].1 / by_cat.last().expect("nonempty").1;
    assert!(spread > 10.0, "category spread only {spread}x");
}

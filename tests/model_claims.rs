//! Cross-crate tests of the paper's model claims (Sections 5 and 7).

use planet_apps::cache::sweep_cache_sizes;
use planet_apps::core::{Seed, StoreId};
use planet_apps::models::{
    fit_clustering, fit_zipf, fit_zipf_amo, ClusterLayout, ClusteringParams, CoarseMode, FitSpec,
    ModelKind, PopulationParams,
};
use planet_apps::synth::{generate, StoreProfile};

fn quick_spec(clusters: usize) -> FitSpec {
    FitSpec {
        zipf_exponents: vec![1.0, 1.2, 1.4, 1.6],
        cluster_exponents: vec![1.0, 1.4, 1.8],
        ps: vec![0.0, 0.5, 0.9, 0.95],
        user_fractions: vec![0.5, 1.0, 2.0],
        clusters,
        threads: 2,
        refine_top: 4,
        replications: 1,
        coarse: CoarseMode::Auto,
    }
}

#[test]
fn app_clustering_explains_generated_stores_best() {
    // Generate a behavioural store and fit all three models: the paper's
    // ordering (clustering < AMO < ZIPF in distance) must hold. At 1/5
    // scale the clustering and at-most-once distances are within
    // Monte-Carlo noise of each other (the ordering flips seed to seed);
    // half scale is the smallest store where the ordering is decisive,
    // with roughly 0.33 / 0.48 / 0.71 distances.
    let profile = StoreProfile::anzhi().scaled_down(2);
    let store = generate(&profile, StoreId(0), Seed::new(201));
    let observed = store.dataset.final_downloads_ranked();
    let spec = quick_spec(profile.categories);
    let seed = Seed::new(202);
    let zipf = fit_zipf(&observed, &spec).expect("fit");
    let amo = fit_zipf_amo(&observed, &spec, seed).expect("fit");
    let clustering = fit_clustering(&observed, &spec, seed).expect("fit");
    assert!(
        clustering.distance < amo.distance && amo.distance < zipf.distance,
        "expected clustering < amo < zipf, got {} / {} / {}",
        clustering.distance,
        amo.distance,
        zipf.distance
    );
    // The paper's best fits use a high clustering probability.
    assert!(clustering.p >= 0.5, "recovered p = {}", clustering.p);
}

#[test]
fn fitted_user_count_tracks_top_app_downloads() {
    // Paper Fig. 10: the best-fitting U sits near the most popular app's
    // downloads (the fetch-at-most-once ceiling).
    let profile = StoreProfile::anzhi().scaled_down(5);
    let store = generate(&profile, StoreId(0), Seed::new(203));
    let observed = store.dataset.final_downloads_ranked();
    let spec = quick_spec(profile.categories);
    let fit = fit_clustering(&observed, &spec, Seed::new(204)).expect("fit");
    let ratio = fit.users as f64 / observed[0] as f64;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "best U is {}x the top app's downloads",
        ratio
    );
}

#[test]
fn lru_hit_ratio_ordering_matches_fig19() {
    let params = ClusteringParams {
        population: PopulationParams {
            apps: 1_000,
            users: 10_000,
            downloads_per_user: 3,
            zipf_exponent: 1.7,
        },
        clusters: 30,
        p: 0.9,
        cluster_exponent: 1.4,
        layout: ClusterLayout::Interleaved,
    };
    let points = sweep_cache_sizes(params, &[0.05, 0.10, 0.20], Seed::new(205), false, 0);
    let ratio = |kind: ModelKind, f: f64| {
        points
            .iter()
            .find(|p| p.model == kind && p.cache_fraction == f)
            .expect("point exists")
            .hit_ratios[0]
            .1
    };
    for f in [0.05, 0.10, 0.20] {
        let zipf = ratio(ModelKind::Zipf, f);
        let amo = ratio(ModelKind::ZipfAtMostOnce, f);
        let clustering = ratio(ModelKind::AppClustering, f);
        assert!(zipf >= amo - 0.02, "{f}: zipf {zipf} vs amo {amo}");
        assert!(
            amo > clustering,
            "{f}: amo {amo} vs clustering {clustering}"
        );
        // The paper's >99% is at 60k-app scale; at this reduced scale
        // the ZIPF workload still hits well above 90%.
        assert!(zipf > 0.9, "{f}: zipf ratio {zipf}");
    }
    // Hit ratio grows with cache size under clustering, approaching the
    // others (paper: 67.1% -> 96.3% over 1% -> 20%).
    let small = ratio(ModelKind::AppClustering, 0.05);
    let large = ratio(ModelKind::AppClustering, 0.20);
    assert!(large > small, "no growth: {small} -> {large}");
}

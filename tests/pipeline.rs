//! End-to-end pipeline tests: generate → crawl → analyze → reproduce the
//! paper's headline claims on the harvested (not ground-truth) data.

use planet_apps::affinity::{affinity_samples, build_user_streams, random_walk_affinity};
use planet_apps::core::{Seed, StoreId};
use planet_apps::crawler::{
    run_campaign, FaultPlan, MarketplaceServer, ProxyPool, Region, ServerPolicy,
};
use planet_apps::stats::{top_share, zipf_fit_trunk};
use planet_apps::synth::{generate, StoreProfile};

fn anzhi_like() -> planet_apps::core::Dataset {
    let profile = StoreProfile::anzhi().scaled_down(4);
    generate(&profile, StoreId(0), Seed::new(101)).dataset
}

#[test]
fn crawled_data_reproduces_pareto_and_truncated_zipf() {
    let truth = anzhi_like();
    let server = MarketplaceServer::new(
        &truth,
        ServerPolicy {
            requests_per_second: 5_000.0,
            burst: 10_000,
            china_only: true,
            ..ServerPolicy::default()
        },
    );
    let mut pool = ProxyPool::planetlab(20, 10);
    let outcome = run_campaign(
        &server,
        &truth,
        &mut pool,
        Some(Region::China),
        FaultPlan {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
        },
        Seed::new(102),
    )
    .expect("campaign completes");
    let harvested = outcome.dataset;
    assert!(harvested.validate().is_ok());

    // Pareto effect on crawled data (paper Fig. 2).
    let ranked = harvested.final_downloads_ranked();
    let share = top_share(&ranked, 0.10).expect("nonempty");
    assert!(
        (0.55..=0.98).contains(&share),
        "top-10% share {share} outside band"
    );

    // Zipf-like trunk (paper Fig. 3).
    let fit = zipf_fit_trunk(&ranked, ranked.len() / 50, ranked.len() / 4).expect("trunk fit");
    assert!(fit.quality > 0.85, "trunk r² {}", fit.quality);
    assert!(
        (0.6..=2.2).contains(&fit.exponent),
        "trunk exponent {}",
        fit.exponent
    );

    // Head truncation: the measured head must be far flatter than the
    // trunk law extrapolated to rank 1.
    let head_ratio = ranked[0] as f64 / ranked[9] as f64;
    let zipf_ratio = 10f64.powf(fit.exponent);
    assert!(
        head_ratio < zipf_ratio,
        "no head truncation: measured ratio {head_ratio}, trunk predicts {zipf_ratio}"
    );
}

#[test]
fn crawled_comments_show_the_clustering_effect() {
    let truth = anzhi_like();
    let server = MarketplaceServer::new(
        &truth,
        ServerPolicy {
            requests_per_second: 5_000.0,
            burst: 10_000,
            ..ServerPolicy::default()
        },
    );
    let mut pool = ProxyPool::planetlab(0, 10);
    let outcome = run_campaign(
        &server,
        &truth,
        &mut pool,
        None,
        FaultPlan::default(),
        Seed::new(103),
    )
    .expect("campaign completes");
    let harvested = outcome.dataset;

    let streams = build_user_streams(&harvested.comments, |a| harvested.category_of(a));
    assert!(!streams.is_empty(), "comments were harvested");
    let samples = affinity_samples(&streams, 1);
    assert!(
        samples.len() > 100,
        "enough scored users: {}",
        samples.len()
    );
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let baseline =
        random_walk_affinity(&harvested.apps_by_category(harvested.last()), 1).expect("apps exist");
    assert!(
        mean > 2.0 * baseline,
        "affinity {mean} not clearly above the random walk {baseline}"
    );
}

#[test]
fn updates_validate_fetch_at_most_once_on_crawled_data() {
    let truth = anzhi_like();
    let server = MarketplaceServer::new(
        &truth,
        ServerPolicy {
            requests_per_second: 5_000.0,
            burst: 10_000,
            ..ServerPolicy::default()
        },
    );
    let mut pool = ProxyPool::planetlab(0, 8);
    let outcome = run_campaign(
        &server,
        &truth,
        &mut pool,
        None,
        FaultPlan::default(),
        Seed::new(104),
    )
    .expect("campaign completes");
    let harvested = outcome.dataset;
    let updates = harvested.updates_per_app();
    let zero = updates.iter().filter(|&&u| u == 0).count() as f64 / updates.len() as f64;
    // Paper Fig. 4: most apps never updated during the campaign (the
    // crawl can only see updates after an app's first observation, so
    // the harvested zero fraction is at least the generated one).
    assert!(zero > 0.7, "never-updated fraction {zero}");
}

#!/usr/bin/env bash
# Performance snapshot for the repro pipeline and its hot kernels.
#
# Times `repro all --scale 16` end-to-end — once serial (--threads 1)
# and once with one worker per CPU — then runs the model-fit kernel
# benches, and writes everything to BENCH_<date>.json at the repo root
# so performance-sensitive changes leave a comparable record.
#
# Set BASELINE_SECONDS to record a pre-change wall time for the same
# `repro all --scale 16` command (e.g. measured on the parent commit);
# the report then includes the speedup against it. Set BENCH_NOTES to
# attach free-form context (host caveats, what changed) to the report.
set -euo pipefail
cd "$(dirname "$0")/.."

DATE="$(date +%F)"
# Never clobber an existing report (e.g. a same-day baseline): suffix
# with a run number instead.
OUT="BENCH_${DATE}.json"
N=2
while [ -e "$OUT" ]; do
    OUT="BENCH_${DATE}.${N}.json"
    N=$((N + 1))
done
METRICS_OUT="${OUT%.json}.metrics.json"
CPUS="$(nproc)"
SCALE=16
# Provenance: which commit produced this report (dirty marked), so
# benchdiff.sh comparisons are unambiguous.
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
    GIT_SHA="${GIT_SHA}-dirty"
fi

# --workspace: the root manifest is both a workspace and a package, so a
# bare `cargo build` covers only the root package and can leave
# target/release/repro (package `bench`) stale.
echo "== cargo build --release --workspace =="
if ! cargo build --release --workspace -q; then
    echo "error: cargo build --release failed; no benchmark was run" >&2
    exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

run_repro() { # run_repro <threads> <stderr-log> [extra args...]; prints wall seconds
    local threads="$1" log="$2" start end
    shift 2
    start="$(date +%s.%N)"
    ./target/release/repro all --scale "$SCALE" --threads "$threads" "$@" \
        >/dev/null 2>"$log"
    end="$(date +%s.%N)"
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", e - s }'
}

echo "== repro all --scale $SCALE --threads 1 =="
SERIAL="$(run_repro 1 "$TMP/serial.log")"
echo "   ${SERIAL}s"

echo "== repro all --scale $SCALE --threads $CPUS =="
# The parallel run also archives the observability snapshot next to the
# report, so every benchmark leaves the metric record that explains it.
PARALLEL="$(run_repro "$CPUS" "$TMP/parallel.log" --metrics "$METRICS_OUT")"
echo "   ${PARALLEL}s"
echo "   metrics snapshot: $METRICS_OUT"

# Peak RSS from repro's own stderr accounting ("peak RSS <N> MiB",
# via /proc/self/status VmHWM) — 0 when the platform can't report it.
rss_of() { # rss_of <stderr-log>; prints MiB
    sed -n 's/^peak RSS \([0-9]*\) MiB$/\1/p' "$1" | tail -1 | grep . || echo 0
}
SERIAL_RSS="$(rss_of "$TMP/serial.log")"
PARALLEL_RSS="$(rss_of "$TMP/parallel.log")"
echo "   peak RSS: ${SERIAL_RSS} MiB serial, ${PARALLEL_RSS} MiB parallel"

echo "== kernel benches (bench/model_fit) =="
cargo bench -q -p bench --bench model_fit | tee "$TMP/kernels.log"

# Per-experiment wall times from the *serial* run's stderr progress
# lines ("[<id> in <secs>s]", millisecond resolution). The serial run
# times each experiment alone; under --threads N experiments overlap
# and contend, so their individual wall times say little.
sed -n 's/^\[\(.*\) in \(.*\)s\]$/{"id":"\1","seconds":\2}/p' "$TMP/serial.log" |
    jq -s '.' >"$TMP/experiments.json"

# Kernel medians from the bench harness lines
# ("bench <id> median <duration> (<n> samples)").
awk '/^bench .* median / {
    printf "{\"id\":\"%s\",\"median\":\"%s\"}\n", $2, $4
}' "$TMP/kernels.log" | jq -s '.' >"$TMP/kernels.json"

jq -n \
    --arg date "$DATE" \
    --arg sha "$GIT_SHA" \
    --arg scale "$SCALE" \
    --arg cpus "$CPUS" \
    --arg serial "$SERIAL" \
    --arg parallel "$PARALLEL" \
    --arg baseline "${BASELINE_SECONDS:-}" \
    --arg notes "${BENCH_NOTES:-}" \
    --arg serial_rss "$SERIAL_RSS" \
    --arg parallel_rss "$PARALLEL_RSS" \
    --slurpfile experiments "$TMP/experiments.json" \
    --slurpfile kernels "$TMP/kernels.json" \
    '({
        date: $date,
        git_sha: $sha,
        host_cpus: ($cpus | tonumber),
        repro: ({
            command: ("repro all --scale " + $scale),
            threads: { serial: 1, parallel: ($cpus | tonumber) },
            threads_1_seconds: ($serial | tonumber),
            threads_ncpu_seconds: ($parallel | tonumber),
            peak_rss_mib: {
                threads_1: ($serial_rss | tonumber),
                threads_ncpu: ($parallel_rss | tonumber)
            },
            per_experiment_seconds: $experiments[0]
        } + (if $baseline == "" then {} else {
            baseline_seconds: ($baseline | tonumber),
            speedup_vs_baseline:
                (($baseline | tonumber) / ($parallel | tonumber))
        } end)),
        kernels: $kernels[0]
    } + (if $notes == "" then {} else { notes: $notes } end))' >"$OUT"

echo "wrote $OUT"

#!/usr/bin/env bash
# Compare two BENCH_*.json reports (see scripts/bench.sh).
#
# Usage: scripts/benchdiff.sh OLD.json NEW.json [threshold-pct]
#
# Prints the end-to-end serial/parallel wall-time deltas and a
# per-experiment table, flagging every experiment that slowed down by
# more than the threshold (default 10%). Exits 1 when any regression
# exceeds the threshold, so the script can gate CI or a local workflow.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [threshold-pct]" >&2
    exit 2
fi
OLD="$1"
NEW="$2"
THRESHOLD="${3:-10}"
command -v jq >/dev/null || { echo "benchdiff.sh needs jq" >&2; exit 2; }

for f in "$OLD" "$NEW"; do
    [ -e "$f" ] || { echo "benchdiff: $f does not exist (run scripts/bench.sh to produce it)" >&2; exit 2; }
    [ -r "$f" ] || { echo "benchdiff: cannot read $f (check permissions)" >&2; exit 2; }
    jq empty "$f" 2>/dev/null || { echo "benchdiff: $f is not valid JSON (truncated or not a BENCH_*.json report?)" >&2; exit 2; }
done

# Refuse to "compare" reports with no experiment in common — that would
# render an empty table and a misleading "no regressions" verdict.
SHARED="$(jq -rn --slurpfile old "$OLD" --slurpfile new "$NEW" '
    [($old[0].repro.per_experiment_seconds // [])[].id] as $o |
    [($new[0].repro.per_experiment_seconds // [])[].id] as $n |
    [$o[] | select(. as $id | $n | index($id))] | length')"
if [ "$SHARED" -eq 0 ]; then
    echo "benchdiff: $OLD and $NEW share no experiment ids; nothing to compare" >&2
    echo "benchdiff: (are both files BENCH_*.json reports from scripts/bench.sh?)" >&2
    exit 2
fi

provenance() { # provenance <file>
    jq -r '"\(.date) @ \(.git_sha // "unknown") (\(.host_cpus) cpus)"' "$1"
}
echo "old: $OLD — $(provenance "$OLD")"
echo "new: $NEW — $(provenance "$NEW")"
if [ "$(jq -r '.git_sha // "unknown"' "$OLD")" = "unknown" ] ||
   [ "$(jq -r '.git_sha // "unknown"' "$NEW")" = "unknown" ]; then
    echo "note: a report lacks git_sha (predates provenance fields); comparison is ambiguous"
fi
echo

# End-to-end wall times.
jq -rn --slurpfile old "$OLD" --slurpfile new "$NEW" '
    def delta(field):
        ($old[0].repro[field]) as $o | ($new[0].repro[field]) as $n |
        if $o and $n and $o > 0 then
            "\(field): \($o)s -> \($n)s (\((($n - $o) / $o * 100 * 10 | round) / 10)%)"
        else "\(field): missing in one report" end;
    delta("threads_1_seconds"), delta("threads_ncpu_seconds")'
echo

# Per-experiment deltas, slowest-regression first. Output lines:
#   <flag> <id> <old>s -> <new>s <pct>%
# where flag is "!" for a regression beyond the threshold.
TABLE="$(jq -rn --slurpfile old "$OLD" --slurpfile new "$NEW" --arg thr "$THRESHOLD" '
    ($old[0].repro.per_experiment_seconds // []) as $o |
    ($new[0].repro.per_experiment_seconds // []) as $n |
    [ $o[] as $e | ($n[] | select(.id == $e.id)) as $m |
      select($e.seconds > 0) |
      { id: $e.id, old: $e.seconds, new: $m.seconds,
        pct: (($m.seconds - $e.seconds) / $e.seconds * 100) } ] |
    sort_by(-.pct) | .[] |
    "\(if .pct > ($thr | tonumber) then "!" else " " end) \(.id) \(.old)s -> \(.new)s \((.pct * 10 | round) / 10)%"')"
echo "$TABLE"
echo

REGRESSIONS="$(printf '%s\n' "$TABLE" | grep -c '^!' || true)"
if [ "$REGRESSIONS" -gt 0 ]; then
    echo "$REGRESSIONS experiment(s) regressed by more than ${THRESHOLD}%"
    exit 1
fi
echo "no experiment regressed by more than ${THRESHOLD}%"

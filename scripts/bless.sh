#!/usr/bin/env bash
# Regenerates the golden-figure regression fixtures under tests/golden/.
#
# The golden test itself does the work: with GOLDEN_BLESS=1 it writes
# the per-experiment stdout files and the metrics snapshot instead of
# diffing them, while still asserting that every thread count in
# GOLDEN_THREADS (default 1,2,8) produces byte-identical output.
#
# Run after an intentional output change, then review `git diff
# tests/golden/` before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== blessing goldens (GOLDEN_THREADS=${GOLDEN_THREADS:-1,2,8}) =="
GOLDEN_BLESS=1 cargo test --release -q -p bench --test golden

echo "goldens written to tests/golden/ — review the diff before committing."

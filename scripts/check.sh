#!/usr/bin/env bash
# The full local gate: formatting, lints, and every test.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "All checks passed."

/root/repo/target/release/examples/seed_scan_tmp-5402e0fabc0dc57f.d: examples/seed_scan_tmp.rs

/root/repo/target/release/examples/seed_scan_tmp-5402e0fabc0dc57f: examples/seed_scan_tmp.rs

examples/seed_scan_tmp.rs:

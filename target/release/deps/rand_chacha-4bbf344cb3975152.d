/root/repo/target/release/deps/rand_chacha-4bbf344cb3975152.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-4bbf344cb3975152.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-4bbf344cb3975152.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

/root/repo/target/release/deps/appstore_recommend-f0b844d7ccf0077d.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/release/deps/libappstore_recommend-f0b844d7ccf0077d.rlib: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/release/deps/libappstore_recommend-f0b844d7ccf0077d.rmeta: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:

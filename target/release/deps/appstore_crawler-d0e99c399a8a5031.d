/root/repo/target/release/deps/appstore_crawler-d0e99c399a8a5031.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/release/deps/libappstore_crawler-d0e99c399a8a5031.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/release/deps/libappstore_crawler-d0e99c399a8a5031.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:

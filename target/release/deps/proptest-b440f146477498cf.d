/root/repo/target/release/deps/proptest-b440f146477498cf.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-b440f146477498cf.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-b440f146477498cf.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

/root/repo/target/release/deps/repro-646304d036ab004d.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-646304d036ab004d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

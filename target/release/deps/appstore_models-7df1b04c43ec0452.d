/root/repo/target/release/deps/appstore_models-7df1b04c43ec0452.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/release/deps/libappstore_models-7df1b04c43ec0452.rlib: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/release/deps/libappstore_models-7df1b04c43ec0452.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:

/root/repo/target/release/deps/appstore_revenue-8a9b1f32b20210b2.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/release/deps/libappstore_revenue-8a9b1f32b20210b2.rlib: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/release/deps/libappstore_revenue-8a9b1f32b20210b2.rmeta: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:

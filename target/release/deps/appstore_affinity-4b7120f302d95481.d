/root/repo/target/release/deps/appstore_affinity-4b7120f302d95481.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/release/deps/libappstore_affinity-4b7120f302d95481.rlib: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/release/deps/libappstore_affinity-4b7120f302d95481.rmeta: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:

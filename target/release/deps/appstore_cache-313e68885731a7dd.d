/root/repo/target/release/deps/appstore_cache-313e68885731a7dd.d: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

/root/repo/target/release/deps/libappstore_cache-313e68885731a7dd.rlib: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

/root/repo/target/release/deps/libappstore_cache-313e68885731a7dd.rmeta: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

crates/cache/src/lib.rs:
crates/cache/src/belady.rs:
crates/cache/src/experiment.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:

/root/repo/target/release/deps/planet_apps-9c3ea1125eabc3f8.d: src/lib.rs

/root/repo/target/release/deps/libplanet_apps-9c3ea1125eabc3f8.rlib: src/lib.rs

/root/repo/target/release/deps/libplanet_apps-9c3ea1125eabc3f8.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/appstore_synth-cfeae341c624a4a4.d: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

/root/repo/target/release/deps/libappstore_synth-cfeae341c624a4a4.rlib: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

/root/repo/target/release/deps/libappstore_synth-cfeae341c624a4a4.rmeta: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

crates/synth/src/lib.rs:
crates/synth/src/catalog.rs:
crates/synth/src/downloads.rs:
crates/synth/src/events.rs:
crates/synth/src/generate.rs:
crates/synth/src/profile.rs:

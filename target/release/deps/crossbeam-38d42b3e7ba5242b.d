/root/repo/target/release/deps/crossbeam-38d42b3e7ba5242b.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-38d42b3e7ba5242b.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-38d42b3e7ba5242b.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:

/root/repo/target/debug/examples/quickstart-c54edabefa0eec9f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c54edabefa0eec9f: examples/quickstart.rs

examples/quickstart.rs:

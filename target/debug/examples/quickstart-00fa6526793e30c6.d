/root/repo/target/debug/examples/quickstart-00fa6526793e30c6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-00fa6526793e30c6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

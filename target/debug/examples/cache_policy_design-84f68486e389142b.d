/root/repo/target/debug/examples/cache_policy_design-84f68486e389142b.d: examples/cache_policy_design.rs Cargo.toml

/root/repo/target/debug/examples/libcache_policy_design-84f68486e389142b.rmeta: examples/cache_policy_design.rs Cargo.toml

examples/cache_policy_design.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/pricing_advisor-b8e369a73ebf5663.d: examples/pricing_advisor.rs

/root/repo/target/debug/examples/pricing_advisor-b8e369a73ebf5663: examples/pricing_advisor.rs

examples/pricing_advisor.rs:

/root/repo/target/debug/examples/crawl_campaign-bcb0e21b8a20581e.d: examples/crawl_campaign.rs

/root/repo/target/debug/examples/crawl_campaign-bcb0e21b8a20581e: examples/crawl_campaign.rs

examples/crawl_campaign.rs:

/root/repo/target/debug/examples/crawl_campaign-057d5e748a5a4079.d: examples/crawl_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libcrawl_campaign-057d5e748a5a4079.rmeta: examples/crawl_campaign.rs Cargo.toml

examples/crawl_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/calibrate_price-22cf31884f061286.d: crates/bench/examples/calibrate_price.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate_price-22cf31884f061286.rmeta: crates/bench/examples/calibrate_price.rs Cargo.toml

crates/bench/examples/calibrate_price.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

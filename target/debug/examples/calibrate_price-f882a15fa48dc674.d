/root/repo/target/debug/examples/calibrate_price-f882a15fa48dc674.d: crates/bench/examples/calibrate_price.rs

/root/repo/target/debug/examples/calibrate_price-f882a15fa48dc674: crates/bench/examples/calibrate_price.rs

crates/bench/examples/calibrate_price.rs:

/root/repo/target/debug/examples/pricing_advisor-90ffd50f3dffef32.d: examples/pricing_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libpricing_advisor-90ffd50f3dffef32.rmeta: examples/pricing_advisor.rs Cargo.toml

examples/pricing_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/recommender_shootout-b1f716a40f74ec49.d: examples/recommender_shootout.rs

/root/repo/target/debug/examples/recommender_shootout-b1f716a40f74ec49: examples/recommender_shootout.rs

examples/recommender_shootout.rs:

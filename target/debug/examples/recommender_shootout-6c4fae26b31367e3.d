/root/repo/target/debug/examples/recommender_shootout-6c4fae26b31367e3.d: examples/recommender_shootout.rs Cargo.toml

/root/repo/target/debug/examples/librecommender_shootout-6c4fae26b31367e3.rmeta: examples/recommender_shootout.rs Cargo.toml

examples/recommender_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/cache_policy_design-9332523baf8f4f75.d: examples/cache_policy_design.rs

/root/repo/target/debug/examples/cache_policy_design-9332523baf8f4f75: examples/cache_policy_design.rs

examples/cache_policy_design.rs:

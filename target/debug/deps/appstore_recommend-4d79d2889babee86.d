/root/repo/target/debug/deps/appstore_recommend-4d79d2889babee86.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/debug/deps/libappstore_recommend-4d79d2889babee86.rlib: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/debug/deps/libappstore_recommend-4d79d2889babee86.rmeta: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:

/root/repo/target/debug/deps/serde_derive-92c15664adbb36fe.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-92c15664adbb36fe: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:

/root/repo/target/debug/deps/appstore_stats-35aa9cc7b3bf1822.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/appstore_stats-35aa9cc7b3bf1822: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kstest.rs:
crates/stats/src/multifit.rs:
crates/stats/src/pareto.rs:
crates/stats/src/powerlaw.rs:
crates/stats/src/regression.rs:
crates/stats/src/summary.rs:

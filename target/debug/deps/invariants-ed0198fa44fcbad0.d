/root/repo/target/debug/deps/invariants-ed0198fa44fcbad0.d: crates/synth/tests/invariants.rs

/root/repo/target/debug/deps/invariants-ed0198fa44fcbad0: crates/synth/tests/invariants.rs

crates/synth/tests/invariants.rs:

/root/repo/target/debug/deps/affinity-e05c9d403584e254.d: crates/bench/benches/affinity.rs Cargo.toml

/root/repo/target/debug/deps/libaffinity-e05c9d403584e254.rmeta: crates/bench/benches/affinity.rs Cargo.toml

crates/bench/benches/affinity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_crawler-7403527c4a687465.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_crawler-7403527c4a687465.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs Cargo.toml

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/bench-ca4905fe2871c596.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/behavior.rs crates/bench/src/experiments/breakeven.rs crates/bench/src/experiments/cache.rs crates/bench/src/experiments/income.rs crates/bench/src/experiments/model_fit.rs crates/bench/src/experiments/popularity.rs crates/bench/src/experiments/prefetch.rs crates/bench/src/experiments/pricing.rs crates/bench/src/experiments/recommend.rs crates/bench/src/experiments/table1.rs crates/bench/src/stores.rs

/root/repo/target/debug/deps/libbench-ca4905fe2871c596.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/behavior.rs crates/bench/src/experiments/breakeven.rs crates/bench/src/experiments/cache.rs crates/bench/src/experiments/income.rs crates/bench/src/experiments/model_fit.rs crates/bench/src/experiments/popularity.rs crates/bench/src/experiments/prefetch.rs crates/bench/src/experiments/pricing.rs crates/bench/src/experiments/recommend.rs crates/bench/src/experiments/table1.rs crates/bench/src/stores.rs

/root/repo/target/debug/deps/libbench-ca4905fe2871c596.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/behavior.rs crates/bench/src/experiments/breakeven.rs crates/bench/src/experiments/cache.rs crates/bench/src/experiments/income.rs crates/bench/src/experiments/model_fit.rs crates/bench/src/experiments/popularity.rs crates/bench/src/experiments/prefetch.rs crates/bench/src/experiments/pricing.rs crates/bench/src/experiments/recommend.rs crates/bench/src/experiments/table1.rs crates/bench/src/stores.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/behavior.rs:
crates/bench/src/experiments/breakeven.rs:
crates/bench/src/experiments/cache.rs:
crates/bench/src/experiments/income.rs:
crates/bench/src/experiments/model_fit.rs:
crates/bench/src/experiments/popularity.rs:
crates/bench/src/experiments/prefetch.rs:
crates/bench/src/experiments/pricing.rs:
crates/bench/src/experiments/recommend.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/stores.rs:

/root/repo/target/debug/deps/appstore_affinity-6d7c2c0606424a38.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/debug/deps/appstore_affinity-6d7c2c0606424a38: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:

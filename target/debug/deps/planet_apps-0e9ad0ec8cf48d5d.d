/root/repo/target/debug/deps/planet_apps-0e9ad0ec8cf48d5d.d: src/lib.rs

/root/repo/target/debug/deps/libplanet_apps-0e9ad0ec8cf48d5d.rlib: src/lib.rs

/root/repo/target/debug/deps/libplanet_apps-0e9ad0ec8cf48d5d.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/harness-bcded096a992c6b1.d: crates/bench/tests/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-bcded096a992c6b1.rmeta: crates/bench/tests/harness.rs Cargo.toml

crates/bench/tests/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

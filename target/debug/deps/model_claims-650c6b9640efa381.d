/root/repo/target/debug/deps/model_claims-650c6b9640efa381.d: tests/model_claims.rs

/root/repo/target/debug/deps/model_claims-650c6b9640efa381: tests/model_claims.rs

tests/model_claims.rs:

/root/repo/target/debug/deps/model_fit-be1feeba405c09f8.d: crates/bench/benches/model_fit.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_fit-be1feeba405c09f8.rmeta: crates/bench/benches/model_fit.rs Cargo.toml

crates/bench/benches/model_fit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/revenue_claims-9039760c4efe7ca1.d: tests/revenue_claims.rs Cargo.toml

/root/repo/target/debug/deps/librevenue_claims-9039760c4efe7ca1.rmeta: tests/revenue_claims.rs Cargo.toml

tests/revenue_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

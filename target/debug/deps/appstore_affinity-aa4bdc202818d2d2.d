/root/repo/target/debug/deps/appstore_affinity-aa4bdc202818d2d2.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_affinity-aa4bdc202818d2d2.rmeta: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs Cargo.toml

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

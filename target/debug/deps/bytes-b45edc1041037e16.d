/root/repo/target/debug/deps/bytes-b45edc1041037e16.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-b45edc1041037e16: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

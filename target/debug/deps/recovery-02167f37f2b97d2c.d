/root/repo/target/debug/deps/recovery-02167f37f2b97d2c.d: crates/crawler/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-02167f37f2b97d2c.rmeta: crates/crawler/tests/recovery.rs Cargo.toml

crates/crawler/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

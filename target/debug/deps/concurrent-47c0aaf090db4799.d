/root/repo/target/debug/deps/concurrent-47c0aaf090db4799.d: crates/crawler/tests/concurrent.rs

/root/repo/target/debug/deps/concurrent-47c0aaf090db4799: crates/crawler/tests/concurrent.rs

crates/crawler/tests/concurrent.rs:

/root/repo/target/debug/deps/properties-42d0fdda497416ee.d: crates/crawler/tests/properties.rs

/root/repo/target/debug/deps/properties-42d0fdda497416ee: crates/crawler/tests/properties.rs

crates/crawler/tests/properties.rs:

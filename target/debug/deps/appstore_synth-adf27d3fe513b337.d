/root/repo/target/debug/deps/appstore_synth-adf27d3fe513b337.d: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_synth-adf27d3fe513b337.rmeta: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/catalog.rs:
crates/synth/src/downloads.rs:
crates/synth/src/events.rs:
crates/synth/src/generate.rs:
crates/synth/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_affinity-9ccb226b92661230.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_affinity-9ccb226b92661230.rmeta: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs Cargo.toml

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crossbeam-b7772fefc0a96138.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-b7772fefc0a96138.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_stats-14492e6d8d269ea4.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libappstore_stats-14492e6d8d269ea4.rlib: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libappstore_stats-14492e6d8d269ea4.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kstest.rs:
crates/stats/src/multifit.rs:
crates/stats/src/pareto.rs:
crates/stats/src/powerlaw.rs:
crates/stats/src/regression.rs:
crates/stats/src/summary.rs:

/root/repo/target/debug/deps/appstore_models-3b38c9cb319a7abf.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_models-3b38c9cb319a7abf.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

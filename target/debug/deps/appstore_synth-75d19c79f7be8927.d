/root/repo/target/debug/deps/appstore_synth-75d19c79f7be8927.d: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_synth-75d19c79f7be8927.rmeta: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/catalog.rs:
crates/synth/src/downloads.rs:
crates/synth/src/events.rs:
crates/synth/src/generate.rs:
crates/synth/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/planet_apps-41e7379c280e4d6b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplanet_apps-41e7379c280e4d6b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

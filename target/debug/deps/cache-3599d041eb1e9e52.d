/root/repo/target/debug/deps/cache-3599d041eb1e9e52.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-3599d041eb1e9e52.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/planet_apps-8b31f36abcc3c766.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplanet_apps-8b31f36abcc3c766.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

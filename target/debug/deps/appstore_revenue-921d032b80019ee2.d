/root/repo/target/debug/deps/appstore_revenue-921d032b80019ee2.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_revenue-921d032b80019ee2.rmeta: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs Cargo.toml

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde_derive-b3eb994b976495d3.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-b3eb994b976495d3.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:

/root/repo/target/debug/deps/parking_lot-f7aa14a76fb256b5.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f7aa14a76fb256b5.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f7aa14a76fb256b5.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:

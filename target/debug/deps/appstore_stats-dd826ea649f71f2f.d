/root/repo/target/debug/deps/appstore_stats-dd826ea649f71f2f.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_stats-dd826ea649f71f2f.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/corr.rs crates/stats/src/distance.rs crates/stats/src/ecdf.rs crates/stats/src/histogram.rs crates/stats/src/kstest.rs crates/stats/src/multifit.rs crates/stats/src/pareto.rs crates/stats/src/powerlaw.rs crates/stats/src/regression.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/corr.rs:
crates/stats/src/distance.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/kstest.rs:
crates/stats/src/multifit.rs:
crates/stats/src/pareto.rs:
crates/stats/src/powerlaw.rs:
crates/stats/src/regression.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crossbeam-a51cfb6bed76fb52.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a51cfb6bed76fb52.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a51cfb6bed76fb52.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:

/root/repo/target/debug/deps/rand_chacha-d00be94b3254356e.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-d00be94b3254356e: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

/root/repo/target/debug/deps/rand_chacha-3b3276291e414ea7.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-3b3276291e414ea7.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/planet_apps-dc75a7454b82525d.d: src/lib.rs

/root/repo/target/debug/deps/planet_apps-dc75a7454b82525d: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/appstore_recommend-1bdbaf0ea6a2c0ce.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_recommend-1bdbaf0ea6a2c0ce.rmeta: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs Cargo.toml

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/planet_apps-c9b526bf5e1e6b07.d: src/lib.rs

/root/repo/target/debug/deps/libplanet_apps-c9b526bf5e1e6b07.rlib: src/lib.rs

/root/repo/target/debug/deps/libplanet_apps-c9b526bf5e1e6b07.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/model_claims-06788e009325e6f8.d: tests/model_claims.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_claims-06788e009325e6f8.rmeta: tests/model_claims.rs Cargo.toml

tests/model_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

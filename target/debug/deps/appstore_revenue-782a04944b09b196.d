/root/repo/target/debug/deps/appstore_revenue-782a04944b09b196.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/debug/deps/libappstore_revenue-782a04944b09b196.rlib: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/debug/deps/libappstore_revenue-782a04944b09b196.rmeta: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:

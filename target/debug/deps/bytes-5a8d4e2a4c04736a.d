/root/repo/target/debug/deps/bytes-5a8d4e2a4c04736a.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-5a8d4e2a4c04736a.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_crawler-6035757a1ff16b4e.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_crawler-6035757a1ff16b4e.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs Cargo.toml

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-6cb5f78b95590643.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6cb5f78b95590643: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

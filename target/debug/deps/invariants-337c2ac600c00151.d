/root/repo/target/debug/deps/invariants-337c2ac600c00151.d: crates/synth/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-337c2ac600c00151.rmeta: crates/synth/tests/invariants.rs Cargo.toml

crates/synth/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/popularity-775334742dc5c831.d: crates/bench/benches/popularity.rs Cargo.toml

/root/repo/target/debug/deps/libpopularity-775334742dc5c831.rmeta: crates/bench/benches/popularity.rs Cargo.toml

crates/bench/benches/popularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand_chacha-df21ae3d465acf5e.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-df21ae3d465acf5e.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-df21ae3d465acf5e.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:

/root/repo/target/debug/deps/crossbeam-0241737b8b67926b.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-0241737b8b67926b: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:

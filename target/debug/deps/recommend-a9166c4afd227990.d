/root/repo/target/debug/deps/recommend-a9166c4afd227990.d: crates/bench/benches/recommend.rs Cargo.toml

/root/repo/target/debug/deps/librecommend-a9166c4afd227990.rmeta: crates/bench/benches/recommend.rs Cargo.toml

crates/bench/benches/recommend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

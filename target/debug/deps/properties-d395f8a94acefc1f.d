/root/repo/target/debug/deps/properties-d395f8a94acefc1f.d: crates/crawler/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d395f8a94acefc1f.rmeta: crates/crawler/tests/properties.rs Cargo.toml

crates/crawler/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-ed9e895ce4550622.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ed9e895ce4550622.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

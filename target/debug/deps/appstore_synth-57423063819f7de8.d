/root/repo/target/debug/deps/appstore_synth-57423063819f7de8.d: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

/root/repo/target/debug/deps/libappstore_synth-57423063819f7de8.rlib: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

/root/repo/target/debug/deps/libappstore_synth-57423063819f7de8.rmeta: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

crates/synth/src/lib.rs:
crates/synth/src/catalog.rs:
crates/synth/src/downloads.rs:
crates/synth/src/events.rs:
crates/synth/src/generate.rs:
crates/synth/src/profile.rs:

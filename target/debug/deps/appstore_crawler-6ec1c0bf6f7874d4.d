/root/repo/target/debug/deps/appstore_crawler-6ec1c0bf6f7874d4.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/debug/deps/libappstore_crawler-6ec1c0bf6f7874d4.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/debug/deps/libappstore_crawler-6ec1c0bf6f7874d4.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:

/root/repo/target/debug/deps/appstore_synth-4c009cc66a3bd097.d: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

/root/repo/target/debug/deps/appstore_synth-4c009cc66a3bd097: crates/synth/src/lib.rs crates/synth/src/catalog.rs crates/synth/src/downloads.rs crates/synth/src/events.rs crates/synth/src/generate.rs crates/synth/src/profile.rs

crates/synth/src/lib.rs:
crates/synth/src/catalog.rs:
crates/synth/src/downloads.rs:
crates/synth/src/events.rs:
crates/synth/src/generate.rs:
crates/synth/src/profile.rs:

/root/repo/target/debug/deps/serde_json-3426ffb44976e422.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3426ffb44976e422.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3426ffb44976e422.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

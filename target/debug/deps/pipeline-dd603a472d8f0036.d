/root/repo/target/debug/deps/pipeline-dd603a472d8f0036.d: crates/bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-dd603a472d8f0036.rmeta: crates/bench/benches/pipeline.rs Cargo.toml

crates/bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

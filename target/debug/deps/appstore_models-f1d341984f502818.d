/root/repo/target/debug/deps/appstore_models-f1d341984f502818.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/debug/deps/appstore_models-f1d341984f502818: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:

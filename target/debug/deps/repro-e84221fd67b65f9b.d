/root/repo/target/debug/deps/repro-e84221fd67b65f9b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e84221fd67b65f9b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

/root/repo/target/debug/deps/appstore_cache-7cf689633243f459.d: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

/root/repo/target/debug/deps/appstore_cache-7cf689633243f459: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

crates/cache/src/lib.rs:
crates/cache/src/belady.rs:
crates/cache/src/experiment.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:

/root/repo/target/debug/deps/appstore_affinity-d88ff0182fddab8b.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/debug/deps/libappstore_affinity-d88ff0182fddab8b.rlib: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/debug/deps/libappstore_affinity-d88ff0182fddab8b.rmeta: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:

/root/repo/target/debug/deps/revenue_claims-81de7ff47423b291.d: tests/revenue_claims.rs

/root/repo/target/debug/deps/revenue_claims-81de7ff47423b291: tests/revenue_claims.rs

tests/revenue_claims.rs:

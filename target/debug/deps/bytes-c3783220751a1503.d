/root/repo/target/debug/deps/bytes-c3783220751a1503.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c3783220751a1503.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c3783220751a1503.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:

/root/repo/target/debug/deps/appstore_core-3e34def41b976ca2.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/bitset.rs crates/core/src/category.rs crates/core/src/dataset.rs crates/core/src/developer.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/ids.rs crates/core/src/money.rs crates/core/src/quality.rs crates/core/src/seed.rs crates/core/src/snapshot.rs crates/core/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_core-3e34def41b976ca2.rmeta: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/bitset.rs crates/core/src/category.rs crates/core/src/dataset.rs crates/core/src/developer.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/ids.rs crates/core/src/money.rs crates/core/src/quality.rs crates/core/src/seed.rs crates/core/src/snapshot.rs crates/core/src/time.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/bitset.rs:
crates/core/src/category.rs:
crates/core/src/dataset.rs:
crates/core/src/developer.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/ids.rs:
crates/core/src/money.rs:
crates/core/src/quality.rs:
crates/core/src/seed.rs:
crates/core/src/snapshot.rs:
crates/core/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-2f11766e4e5a9b40.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-2f11766e4e5a9b40: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

/root/repo/target/debug/deps/bench-c480472df123766f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/behavior.rs crates/bench/src/experiments/breakeven.rs crates/bench/src/experiments/cache.rs crates/bench/src/experiments/income.rs crates/bench/src/experiments/model_fit.rs crates/bench/src/experiments/popularity.rs crates/bench/src/experiments/prefetch.rs crates/bench/src/experiments/pricing.rs crates/bench/src/experiments/recommend.rs crates/bench/src/experiments/recovery.rs crates/bench/src/experiments/table1.rs crates/bench/src/stores.rs Cargo.toml

/root/repo/target/debug/deps/libbench-c480472df123766f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/behavior.rs crates/bench/src/experiments/breakeven.rs crates/bench/src/experiments/cache.rs crates/bench/src/experiments/income.rs crates/bench/src/experiments/model_fit.rs crates/bench/src/experiments/popularity.rs crates/bench/src/experiments/prefetch.rs crates/bench/src/experiments/pricing.rs crates/bench/src/experiments/recommend.rs crates/bench/src/experiments/recovery.rs crates/bench/src/experiments/table1.rs crates/bench/src/stores.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/behavior.rs:
crates/bench/src/experiments/breakeven.rs:
crates/bench/src/experiments/cache.rs:
crates/bench/src/experiments/income.rs:
crates/bench/src/experiments/model_fit.rs:
crates/bench/src/experiments/popularity.rs:
crates/bench/src/experiments/prefetch.rs:
crates/bench/src/experiments/pricing.rs:
crates/bench/src/experiments/recommend.rs:
crates/bench/src/experiments/recovery.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/stores.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_core-2584645c9cf78ac1.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/bitset.rs crates/core/src/category.rs crates/core/src/dataset.rs crates/core/src/developer.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/ids.rs crates/core/src/money.rs crates/core/src/seed.rs crates/core/src/snapshot.rs crates/core/src/time.rs

/root/repo/target/debug/deps/libappstore_core-2584645c9cf78ac1.rlib: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/bitset.rs crates/core/src/category.rs crates/core/src/dataset.rs crates/core/src/developer.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/ids.rs crates/core/src/money.rs crates/core/src/seed.rs crates/core/src/snapshot.rs crates/core/src/time.rs

/root/repo/target/debug/deps/libappstore_core-2584645c9cf78ac1.rmeta: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/bitset.rs crates/core/src/category.rs crates/core/src/dataset.rs crates/core/src/developer.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/ids.rs crates/core/src/money.rs crates/core/src/seed.rs crates/core/src/snapshot.rs crates/core/src/time.rs

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/bitset.rs:
crates/core/src/category.rs:
crates/core/src/dataset.rs:
crates/core/src/developer.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/ids.rs:
crates/core/src/money.rs:
crates/core/src/seed.rs:
crates/core/src/snapshot.rs:
crates/core/src/time.rs:

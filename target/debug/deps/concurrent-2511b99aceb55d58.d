/root/repo/target/debug/deps/concurrent-2511b99aceb55d58.d: crates/crawler/tests/concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent-2511b99aceb55d58.rmeta: crates/crawler/tests/concurrent.rs Cargo.toml

crates/crawler/tests/concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

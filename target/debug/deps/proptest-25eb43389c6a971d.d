/root/repo/target/debug/deps/proptest-25eb43389c6a971d.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-25eb43389c6a971d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-25eb43389c6a971d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

/root/repo/target/debug/deps/rand_chacha-2b5a6a161d960918.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-2b5a6a161d960918.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pipeline-58fc668c51a2d3d1.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-58fc668c51a2d3d1: tests/pipeline.rs

tests/pipeline.rs:

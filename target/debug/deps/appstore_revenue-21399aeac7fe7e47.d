/root/repo/target/debug/deps/appstore_revenue-21399aeac7fe7e47.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_revenue-21399aeac7fe7e47.rmeta: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs Cargo.toml

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

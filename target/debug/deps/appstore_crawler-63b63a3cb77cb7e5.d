/root/repo/target/debug/deps/appstore_crawler-63b63a3cb77cb7e5.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/debug/deps/libappstore_crawler-63b63a3cb77cb7e5.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/debug/deps/libappstore_crawler-63b63a3cb77cb7e5.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:

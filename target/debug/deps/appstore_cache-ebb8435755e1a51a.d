/root/repo/target/debug/deps/appstore_cache-ebb8435755e1a51a.d: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_cache-ebb8435755e1a51a.rmeta: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/belady.rs:
crates/cache/src/experiment.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_models-647a03472dad3003.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_models-647a03472dad3003.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_crawler-d44a04e1d5eeed61.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

/root/repo/target/debug/deps/appstore_crawler-d44a04e1d5eeed61: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/client.rs crates/crawler/src/proxy.rs crates/crawler/src/server.rs crates/crawler/src/storage.rs crates/crawler/src/wire.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/client.rs:
crates/crawler/src/proxy.rs:
crates/crawler/src/server.rs:
crates/crawler/src/storage.rs:
crates/crawler/src/wire.rs:

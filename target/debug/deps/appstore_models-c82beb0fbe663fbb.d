/root/repo/target/debug/deps/appstore_models-c82beb0fbe663fbb.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/debug/deps/libappstore_models-c82beb0fbe663fbb.rlib: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/debug/deps/libappstore_models-c82beb0fbe663fbb.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:

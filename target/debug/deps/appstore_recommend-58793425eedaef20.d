/root/repo/target/debug/deps/appstore_recommend-58793425eedaef20.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/debug/deps/libappstore_recommend-58793425eedaef20.rlib: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/debug/deps/libappstore_recommend-58793425eedaef20.rmeta: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:

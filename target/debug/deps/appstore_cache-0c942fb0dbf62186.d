/root/repo/target/debug/deps/appstore_cache-0c942fb0dbf62186.d: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

/root/repo/target/debug/deps/libappstore_cache-0c942fb0dbf62186.rlib: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

/root/repo/target/debug/deps/libappstore_cache-0c942fb0dbf62186.rmeta: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs

crates/cache/src/lib.rs:
crates/cache/src/belady.rs:
crates/cache/src/experiment.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:

/root/repo/target/debug/deps/repro-36cc545272c066c9.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-36cc545272c066c9.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

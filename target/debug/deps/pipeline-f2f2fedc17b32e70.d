/root/repo/target/debug/deps/pipeline-f2f2fedc17b32e70.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-f2f2fedc17b32e70.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

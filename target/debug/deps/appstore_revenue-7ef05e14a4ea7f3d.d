/root/repo/target/debug/deps/appstore_revenue-7ef05e14a4ea7f3d.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/debug/deps/appstore_revenue-7ef05e14a4ea7f3d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:

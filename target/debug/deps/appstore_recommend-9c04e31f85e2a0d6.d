/root/repo/target/debug/deps/appstore_recommend-9c04e31f85e2a0d6.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

/root/repo/target/debug/deps/appstore_recommend-9c04e31f85e2a0d6: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:

/root/repo/target/debug/deps/appstore_revenue-e5ca232eb7233182.d: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/debug/deps/libappstore_revenue-e5ca232eb7233182.rlib: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

/root/repo/target/debug/deps/libappstore_revenue-e5ca232eb7233182.rmeta: crates/revenue/src/lib.rs crates/revenue/src/ads.rs crates/revenue/src/breakeven.rs crates/revenue/src/categories.rs crates/revenue/src/income.rs crates/revenue/src/pricing.rs

crates/revenue/src/lib.rs:
crates/revenue/src/ads.rs:
crates/revenue/src/breakeven.rs:
crates/revenue/src/categories.rs:
crates/revenue/src/income.rs:
crates/revenue/src/pricing.rs:

/root/repo/target/debug/deps/harness-a0317fef2ac6949a.d: crates/bench/tests/harness.rs

/root/repo/target/debug/deps/harness-a0317fef2ac6949a: crates/bench/tests/harness.rs

crates/bench/tests/harness.rs:

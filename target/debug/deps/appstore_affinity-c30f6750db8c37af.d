/root/repo/target/debug/deps/appstore_affinity-c30f6750db8c37af.d: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/debug/deps/libappstore_affinity-c30f6750db8c37af.rlib: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

/root/repo/target/debug/deps/libappstore_affinity-c30f6750db8c37af.rmeta: crates/affinity/src/lib.rs crates/affinity/src/analysis.rs crates/affinity/src/baseline.rs crates/affinity/src/drift.rs crates/affinity/src/metric.rs crates/affinity/src/strings.rs

crates/affinity/src/lib.rs:
crates/affinity/src/analysis.rs:
crates/affinity/src/baseline.rs:
crates/affinity/src/drift.rs:
crates/affinity/src/metric.rs:
crates/affinity/src/strings.rs:

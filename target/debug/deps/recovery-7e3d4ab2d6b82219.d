/root/repo/target/debug/deps/recovery-7e3d4ab2d6b82219.d: crates/crawler/tests/recovery.rs

/root/repo/target/debug/deps/recovery-7e3d4ab2d6b82219: crates/crawler/tests/recovery.rs

crates/crawler/tests/recovery.rs:

/root/repo/target/debug/deps/appstore_models-1eeff4e5420f6845.d: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/debug/deps/libappstore_models-1eeff4e5420f6845.rlib: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

/root/repo/target/debug/deps/libappstore_models-1eeff4e5420f6845.rmeta: crates/models/src/lib.rs crates/models/src/config.rs crates/models/src/expectation.rs crates/models/src/fit.rs crates/models/src/simulate.rs crates/models/src/zipf.rs

crates/models/src/lib.rs:
crates/models/src/config.rs:
crates/models/src/expectation.rs:
crates/models/src/fit.rs:
crates/models/src/simulate.rs:
crates/models/src/zipf.rs:

/root/repo/target/debug/deps/appstore_cache-7a549a559c13c38b.d: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_cache-7a549a559c13c38b.rmeta: crates/cache/src/lib.rs crates/cache/src/belady.rs crates/cache/src/experiment.rs crates/cache/src/policy.rs crates/cache/src/prefetch.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/belady.rs:
crates/cache/src/experiment.rs:
crates/cache/src/policy.rs:
crates/cache/src/prefetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/repro-04626c4c52586db4.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-04626c4c52586db4: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:

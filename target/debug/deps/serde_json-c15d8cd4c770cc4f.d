/root/repo/target/debug/deps/serde_json-c15d8cd4c770cc4f.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-c15d8cd4c770cc4f.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/appstore_recommend-eba9c7f86bc01cbf.d: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs Cargo.toml

/root/repo/target/debug/deps/libappstore_recommend-eba9c7f86bc01cbf.rmeta: crates/recommend/src/lib.rs crates/recommend/src/eval.rs crates/recommend/src/recommender.rs Cargo.toml

crates/recommend/src/lib.rs:
crates/recommend/src/eval.rs:
crates/recommend/src/recommender.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

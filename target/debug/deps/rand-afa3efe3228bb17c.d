/root/repo/target/debug/deps/rand-afa3efe3228bb17c.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-afa3efe3228bb17c.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/pricing-73aeccbf94e7f78d.d: crates/bench/benches/pricing.rs Cargo.toml

/root/repo/target/debug/deps/libpricing-73aeccbf94e7f78d.rmeta: crates/bench/benches/pricing.rs Cargo.toml

crates/bench/benches/pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

//! Offline stand-in for `rand` 0.8.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] — with the same calling conventions as the real
//! crate, so call sites compile unchanged. Algorithms follow the real
//! implementations where determinism matters (widening-multiply range
//! reduction, 53-bit float generation, Fisher–Yates shuffling), but no
//! cross-crate bit-compatibility with the real `rand` is promised; the
//! workspace's own `Seed` tree pins all experiment streams.

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded with SplitMix64
    /// (the same expansion the real crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            w ^= w >> 31;
            let bytes = w.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values the plain `rng.gen()` call can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
/// A single blanket [`SampleRange`] impl per range shape hangs off this
/// trait so integer-literal inference resolves the way it does with the
/// real crate (the range's element type determines the output type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `low < high` is the caller's duty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `low <= high` is the caller's duty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_unsigned {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let span = (high as u64).wrapping_sub(low as u64);
                // Widening multiply maps 64 random bits onto the span
                // with negligible bias for the spans this workspace uses.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(offset as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // The full u64 domain.
                    return rng.next_u64() as $ty;
                }
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(offset as $ty)
            }
        }
    )*};
}
uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i64).wrapping_add(offset as i64) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let span = (high as i64).wrapping_sub(low as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i64).wrapping_add(offset as i64) as $ty
            }
        }
    )*};
}
uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let unit = <$ty as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let unit = <$ty as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Flips a coin with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice shuffling and selection.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, if any.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks up to `amount` distinct elements, in random order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table: the first
            // `amount` swapped positions are a uniform distinct sample.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + gen_index(rng, indices.len() - i);
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }

    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64). The real
    /// crate's `StdRng` is only referenced, never relied on, by this
    /// workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> StdRng {
            StdRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc: u64 = rng.gen_range(5..=5);
            assert_eq!(inc, 5);
            let neg: i64 = rng.gen_range(-10..=-2);
            assert!((-10..=-2).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = xs.choose(&mut rng).unwrap();
            seen[(v - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unsized_rng_references_work() {
        // Mirrors the workspace's `R: Rng + ?Sized` call sites.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(2);
        let dynamic: &mut dyn RngCore = &mut rng;
        assert!(draw(&mut &mut *dynamic) < 100);
    }
}

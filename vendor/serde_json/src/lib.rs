//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde`'s [`Value`] tree to JSON text and parses
//! JSON text back. The emitted format is standard JSON (escaped strings,
//! `null` for non-finite floats), so everything the workspace writes is
//! also readable by real JSON tooling; the parser accepts arbitrary
//! bytes without panicking, which the crawler's corruption-injection
//! tests rely on.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::{Number, Value};

/// Parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Emitter.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; force a decimal
                // point so the value re-parses as a float.
                let text = x.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Maximum nesting depth; keeps adversarial input from exhausting the
/// stack (the crawler feeds corrupted bytes straight into this parser).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON value from text, requiring the text to contain
/// nothing else (other than whitespace).
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired;
                            // the workspace never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| Error::new("invalid number"))
    }
}

// ---------------------------------------------------------------------------
// The `json!` macro.
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Object values may be
/// nested object literals or arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut __object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_internal!(@object __object () ($($body)+));
        $crate::Value::Object(__object)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::to_value(&$elem)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Terminal: everything consumed.
    (@object $map:ident () ()) => {};
    // Take the next key.
    (@object $map:ident () ($key:literal : $($rest:tt)+)) => {
        $crate::json_internal!(@object $map ($key) ($($rest)+));
    };
    // Value is a nested object literal.
    (@object $map:ident ($key:literal) ({ $($inner:tt)* } , $($rest:tt)*)) => {
        $map.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_internal!(@object $map () ($($rest)*));
    };
    (@object $map:ident ($key:literal) ({ $($inner:tt)* })) => {
        $map.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    // Value is an expression (commas inside groups do not split).
    (@object $map:ident ($key:literal) ($value:expr , $($rest:tt)*)) => {
        $map.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_internal!(@object $map () ($($rest)*));
    };
    (@object $map:ident ($key:literal) ($value:expr)) => {
        $map.push(($key.to_string(), $crate::to_value(&$value)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let v = json!({
            "name": "anzhi",
            "count": 42u32,
            "ratio": 0.5,
            "flag": true,
            "items": vec![1u32, 2, 3],
            "nested": { "inner": 7u32 },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = json!({ "rows": vec![1u64, 2], "label": "x" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let v = Value::String("a\"b\\c\nd".to_string());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn integers_preserve_precision() {
        let big = u64::MAX - 1;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), big);
    }

    #[test]
    fn garbage_never_panics() {
        for garbage in [
            "", "{", "}", "[1,", "{\"a\"", "nul", "tru", "-", "1e", "\"\\u12", "\"abc", "{\"a\":}",
            "[,]", "{{}}",
        ] {
            let _ = from_str::<Value>(garbage);
        }
        let deep = "[".repeat(4000);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("7").is_ok());
    }
}

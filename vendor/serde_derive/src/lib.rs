//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s [`Serialize`]/[`Deserialize`] traits by
//! parsing the item's token stream directly (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly the shapes this workspace
//! declares: non-generic structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! `#[serde(...)]` attributes are accepted and ignored; the only one the
//! workspace uses is `transparent` on newtype structs, which is already
//! the default representation here (a newtype serializes as its inner
//! value, matching serde's behavior).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes `#[...]` attributes and `pub`/`pub(...)` visibility markers.
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    // Generic parameters are not supported (and not used by the
    // workspace); skip any `<...>` so the error surfaces in codegen
    // rather than here.
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in iter.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let kind = if keyword == "enum" {
        let body = match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body, got {other:?}"),
        };
        ItemKind::Enum(parse_variants(body))
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("expected struct body, got {other:?}"),
        }
    };
    Item { name, kind }
}

/// Parses `name: Type, ...` pairs, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut iter);
    }
    fields
}

/// Advances past a type, stopping after the next comma outside `<...>`.
fn skip_type_until_comma(iter: &mut TokenIter) {
    let mut depth = 0i32;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut in_item = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => in_item = false,
                _ => {
                    if !in_item {
                        in_item = true;
                        count += 1;
                    }
                }
            },
            _ => {
                if !in_item {
                    in_item = true;
                    count += 1;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(count)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                _ => {}
            }
            iter.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (plain source strings, parsed back into a TokenStream).
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
               ::std::string::String::from(\"{v}\"), \
               ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                   ::std::string::String::from(\"{v}\"), \
                   ::serde::Value::Array(::std::vec![{}]))]),",
                binders.join(", "),
                values.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                   ::std::string::String::from(\"{v}\"), \
                   ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(name, f, "__obj"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                   ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                   ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return Err(::serde::Error::custom(\
                   \"wrong arity for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("Ok({name})"),
        ItemKind::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}

fn named_field_init(type_name: &str, field: &str, obj: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(\
           {obj}.iter().find(|__e| __e.0 == \"{field}\").map(|__e| &__e.1)\
             .ok_or_else(|| ::serde::Error::custom(\
               \"missing field `{field}` in {type_name}\"))?)?"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Tuple(1) => Some(format!(
                "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_value(__inner)?)),",
                v.name
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{0}\" => {{\n\
                       let __a = __inner.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}::{0}\"))?;\n\
                       if __a.len() != {n} {{ return Err(::serde::Error::custom(\
                         \"wrong arity for {name}::{0}\")); }}\n\
                       Ok({name}::{0}({1}))\n\
                     }}",
                    v.name,
                    items.join(", ")
                ))
            }
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_init(name, f, "__obj"))
                    .collect();
                Some(format!(
                    "\"{0}\" => {{\n\
                       let __obj = __inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{0}\"))?;\n\
                       Ok({name}::{0} {{ {1} }})\n\
                     }}",
                    v.name,
                    inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
           ::serde::Value::String(__s) => match __s.as_str() {{\n\
             {unit}\n\
             __other => Err(::serde::Error::custom(::std::format!(\
               \"unknown {name} variant `{{__other}}`\"))),\n\
           }},\n\
           ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
             let (__tag, __inner) = &__entries[0];\n\
             match __tag.as_str() {{\n\
               {data}\n\
               __other => Err(::serde::Error::custom(::std::format!(\
                 \"unknown {name} variant `{{__other}}`\"))),\n\
             }}\n\
           }}\n\
           _ => Err(::serde::Error::custom(\"invalid {name} representation\")),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n")
    )
}

//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the calling convention this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the `criterion_group!`/`criterion_main!`
//! macros — backed by a deliberately small wall-clock timer: each
//! benchmark is warmed up once, then timed over a fixed iteration
//! budget, with median-of-samples reporting to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier: forwards to `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How expensive batch setup is relative to the routine; only steers
/// how many iterations share one setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap input: many iterations per setup.
    SmallInput,
    /// Expensive input: one iteration per setup.
    LargeInput,
}

/// Times a single benchmark routine.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            measured: Vec::new(),
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.measured.is_empty() {
            return None;
        }
        let mut sorted = self.measured.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (report-flush point in the real crate; a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!("bench {id:<48} median {median:>12.3?} ({samples} samples)"),
        None => println!("bench {id:<48} no measurements recorded"),
    }
}

/// Declares a group-runner function over a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut criterion = Criterion::default();
        let mut calls = 0usize;
        criterion.bench_function("unit/counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 1, "routine should run warm-up plus samples");
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("unit");
        group.sample_size(5);
        let mut setups = 0usize;
        let mut runs = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |input| {
                    runs += 1;
                    input.len()
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, runs, "every routine call gets a fresh input");
        assert!(runs >= 5);
    }
}

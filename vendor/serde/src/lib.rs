//! Offline stand-in for `serde`.
//!
//! The build environment of this repository has no access to crates.io,
//! so the workspace vendors a minimal serialization framework under the
//! `serde` name. Instead of serde's visitor-based zero-copy data model,
//! types convert to and from a JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`;
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc macro (enabled through the `derive` feature),
//!   following serde's default representations: structs as objects,
//!   newtype structs transparently, unit enum variants as strings, and
//!   data-carrying variants as single-key objects.
//!
//! The vendored `serde_json` crate renders [`Value`] to JSON text and
//! parses it back. Everything the workspace round-trips therefore stays
//! line-compatible with itself, which is all the crawl journal and the
//! experiment JSON dumps require.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Value {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an f64, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's entry list, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as a mutable object entry list, if it is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sets `key` in an object, replacing an existing entry in place or
    /// appending a new one. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Object(entries) = self {
            match entries.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = value,
                None => entries.push((key.to_string(), value)),
            }
        }
    }

    /// Whether the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Alias mirroring serde's owned-deserialization marker.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($ty))))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // JSON cannot represent NaN/inf; serde_json maps them to null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()), Ok(xs));
        let pair = (4u64, 0.5f64);
        assert_eq!(<(u64, f64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_round_trips() {
        assert_eq!(Option::<u32>::from_value(&None::<u32>.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(5u32).to_value()),
            Ok(Some(5))
        );
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), 1u32.to_value())]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }
}

//! Offline stand-in for `proptest` 1.x.
//!
//! Reimplements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! [`Strategy`] implementations for integer and float ranges, tuples,
//! `any::<T>()`, and `collection::vec`, plus panic-based `prop_assert!`
//! and `prop_assert_eq!`. Inputs are drawn deterministically per test
//! name, so failures reproduce run-to-run. There is no shrinking: a
//! failing case reports the drawn inputs via the assertion message only.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner settings. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic source of test inputs.
pub type TestRng = StdRng;

/// Builds the input stream for one property, keyed by its name so every
/// run of the same test sees the same cases.
pub fn rng_for_property(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for "any value of `T`", produced by [`any`].
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding vectors of `element`-generated values with a
    /// length drawn from `lengths`.
    pub struct VecStrategy<S> {
        element: S,
        lengths: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, lengths: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lengths }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lengths.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property over drawn inputs; panics (failing the test) when
/// the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// item becomes an ordinary `#[test]` (the attribute is written by the
/// caller, as with the real crate) that redraws its arguments
/// `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; expands one function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::rng_for_property(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = crate::rng_for_property("bounds");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
            let xs = crate::Strategy::generate(
                &crate::collection::vec((0usize..5, any::<bool>()), 2..6),
                &mut rng,
            );
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|(n, _)| *n < 5));
        }
    }

    #[test]
    fn same_property_name_same_stream() {
        let mut a = crate::rng_for_property("stable");
        let mut b = crate::rng_for_property("stable");
        let strat = crate::collection::vec(0u32..100, 1..10);
        for _ in 0..20 {
            assert_eq!(
                crate::Strategy::generate(&strat, &mut a),
                crate::Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_itself_works(mut xs in crate::collection::vec(0u8..10, 0..20), flag in any::<bool>()) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(flag || !flag, true);
        }
    }
}

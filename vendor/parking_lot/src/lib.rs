//! Offline stand-in for `parking_lot` 0.12.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` calling
//! convention: `lock()` returns the guard directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated, matching
//! `parking_lot`'s lack of poisoning.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let lock = Mutex::new(41);
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 42);
    }

    #[test]
    fn try_lock_detects_contention() {
        let lock = Mutex::new(0);
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn survives_a_panicked_holder() {
        let lock = std::sync::Arc::new(Mutex::new(7));
        let clone = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot has no poisoning; the facade must recover too.
        assert_eq!(*lock.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2]);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
    }
}

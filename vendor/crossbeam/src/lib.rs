//! Offline stand-in for `crossbeam` 0.8.
//!
//! Implements `crossbeam::thread::scope` on top of `std::thread::scope`,
//! preserving crossbeam's calling convention: the scope closure and each
//! spawned closure receive a `&Scope` argument, `spawn` returns a handle
//! whose `join()` yields `Result`, and the scope itself returns
//! `Err(payload)` instead of unwinding when a spawned thread panics.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped thread spawning.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked thread, as `std::thread` reports it.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope within which borrowing threads can be spawned.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reentry = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reentry)),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. A panic escaping any thread (including `f` itself)
    /// surfaces as `Err` rather than unwinding, as crossbeam does.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|std_scope| f(&Scope { inner: std_scope }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn threads_borrow_from_the_enclosing_frame() {
            let data = vec![1u64, 2, 3, 4];
            let total = scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panics_become_errors() {
            let joined_err = scope(|scope| {
                let handle = scope.spawn(|_| -> u32 { panic!("worker died") });
                handle.join().is_err()
            })
            .unwrap();
            assert!(joined_err);
        }

        #[test]
        fn nested_spawn_through_the_reentry_handle() {
            let result = scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(result, 42);
        }
    }
}

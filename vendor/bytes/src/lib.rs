//! Offline stand-in for `bytes` 1.x.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte container
//! backed by `Arc<[u8]>`. Only the surface the workspace's wire layer
//! uses is implemented (construction from vectors and static slices,
//! deref to `[u8]`, equality, length).

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            inner: Arc::from(bytes),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(bytes: Vec<u8>) -> Bytes {
        Bytes {
            inner: Arc::from(bytes.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(bytes: &[u8]) -> Bytes {
        Bytes {
            inner: Arc::from(bytes),
        }
    }
}

impl From<String> for Bytes {
    fn from(text: String) -> Bytes {
        Bytes::from(text.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.inner == other.inner
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.inner == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_vec() {
        let payload = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(payload.to_vec(), vec![1, 2, 3]);
        assert_eq!(payload.len(), 3);
        assert_eq!(&payload[..], &[1, 2, 3]);
    }

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from(vec![9u8; 64]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::from_static(b"").is_empty());
        assert_eq!(&Bytes::from_static(b"abc")[..], b"abc");
    }
}

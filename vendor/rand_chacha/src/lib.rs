//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements [`ChaCha12Rng`] with the genuine ChaCha12 block function
//! (IETF layout, 32-byte key / 12-round core), seeded through the
//! vendored `rand` traits. Streams are deterministic for a given seed,
//! which is the only property the workspace relies on; no claim is made
//! of bit-compatibility with the real crate's output ordering.

#![forbid(unsafe_code)]

// `core/seed.rs` imports `rand_chacha::rand_core::SeedableRng`; in the
// real crate `rand_core` is a distinct facade crate, here the vendored
// `rand` plays both roles.
pub use rand as rand_core;

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;
const BLOCK_WORDS: usize = 16;

/// A deterministic generator backed by the ChaCha12 stream cipher core.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// The 256-bit key, kept to regenerate blocks.
    key: [u32; 8],
    /// 64-bit block counter (low word first, matching the IETF layout).
    counter: u64,
    /// The current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word within `block`; `BLOCK_WORDS` forces a refill.
    word_pos: usize,
}

/// One ChaCha quarter round over four register-resident words. A macro
/// (not a function over the state array) so the whole double round runs
/// on sixteen locals the optimizer can keep in registers — the array
/// version forces loads/stores and bounds checks through every quarter
/// and measurably slows the simulators, which consume this stream by
/// the hundreds of millions of words. The arithmetic is unchanged, so
/// the keystream is bit-identical (pinned by `stream_is_pinned`).
macro_rules! quarter {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants; nonce words stay zero (a fresh
        // key per seed means streams never need distinguishing nonces).
        let (s0, s1, s2, s3) = (
            0x6170_7865u32,
            0x3320_646eu32,
            0x7962_2d32u32,
            0x6b20_6574u32,
        );
        let [s4, s5, s6, s7, s8, s9, s10, s11] = self.key;
        let s12 = self.counter as u32;
        let s13 = (self.counter >> 32) as u32;
        let (s14, s15) = (0u32, 0u32);
        let (mut x0, mut x1, mut x2, mut x3) = (s0, s1, s2, s3);
        let (mut x4, mut x5, mut x6, mut x7) = (s4, s5, s6, s7);
        let (mut x8, mut x9, mut x10, mut x11) = (s8, s9, s10, s11);
        let (mut x12, mut x13, mut x14, mut x15) = (s12, s13, s14, s15);
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter!(x0, x4, x8, x12);
            quarter!(x1, x5, x9, x13);
            quarter!(x2, x6, x10, x14);
            quarter!(x3, x7, x11, x15);
            // Diagonal round.
            quarter!(x0, x5, x10, x15);
            quarter!(x1, x6, x11, x12);
            quarter!(x2, x7, x8, x13);
            quarter!(x3, x4, x9, x14);
        }
        self.block = [
            x0.wrapping_add(s0),
            x1.wrapping_add(s1),
            x2.wrapping_add(s2),
            x3.wrapping_add(s3),
            x4.wrapping_add(s4),
            x5.wrapping_add(s5),
            x6.wrapping_add(s6),
            x7.wrapping_add(s7),
            x8.wrapping_add(s8),
            x9.wrapping_add(s9),
            x10.wrapping_add(s10),
            x11.wrapping_add(s11),
            x12.wrapping_add(s12),
            x13.wrapping_add(s13),
            x14.wrapping_add(s14),
            x15.wrapping_add(s15),
        ];
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha12Rng {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            word_pos: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from distinct seeds should diverge");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..19 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Pins the exact keystream produced before the register-resident
    /// `refill` rewrite. Every simulation seed in the workspace flows
    /// through this generator, so any drift here silently invalidates
    /// the golden suite; these vectors were captured from the original
    /// array-indexed implementation.
    #[test]
    fn stream_is_pinned() {
        let mut rng = ChaCha12Rng::seed_from_u64(0xDEAD_BEEF);
        let u64s: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(
            u64s,
            [
                0x1e80_56a5_56e5_9d03,
                0x9ae8_e6b7_fcca_b4f9,
                0x302a_2450_b466_40b3,
                0xf59b_3217_854b_7e27,
                0xbfb6_0a93_cfed_2a32,
                0xbd7c_37b0_330c_170a,
                0xee99_4fbc_865e_770b,
                0x1132_5f59_f4ff_9a54,
            ]
        );
        let mut rng = ChaCha12Rng::seed_from_u64(2013);
        let u32s: Vec<u32> = (0..20).map(|_| rng.next_u32()).collect();
        assert_eq!(
            u32s,
            [
                3853016993, 3792530176, 2866361562, 4026741199, 2480112861, 1983472256, 3788968634,
                3957588610, 2359249563, 1694800302, 29201694, 170007231, 3249039561, 293277414,
                3400859758, 767847818, 1766277258, 2709308474, 69458974, 537993462,
            ]
        );
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[..16], &words[16..32], "consecutive blocks repeat");
    }
}

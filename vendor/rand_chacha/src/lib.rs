//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements [`ChaCha12Rng`] with the genuine ChaCha12 block function
//! (IETF layout, 32-byte key / 12-round core), seeded through the
//! vendored `rand` traits. Streams are deterministic for a given seed,
//! which is the only property the workspace relies on; no claim is made
//! of bit-compatibility with the real crate's output ordering.

#![forbid(unsafe_code)]

// `core/seed.rs` imports `rand_chacha::rand_core::SeedableRng`; in the
// real crate `rand_core` is a distinct facade crate, here the vendored
// `rand` plays both roles.
pub use rand as rand_core;

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;
const BLOCK_WORDS: usize = 16;

/// A deterministic generator backed by the ChaCha12 stream cipher core.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// The 256-bit key, kept to regenerate blocks.
    key: [u32; 8],
    /// 64-bit block counter (low word first, matching the IETF layout).
    counter: u64,
    /// The current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word within `block`; `BLOCK_WORDS` forces a refill.
    word_pos: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: a fresh key per seed means streams never
        // need distinguishing nonces.
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

fn quarter(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha12Rng {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            word_pos: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from distinct seeds should diverge");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..19 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[..16], &words[16..32], "consecutive blocks repeat");
    }
}
